(** The deterministic parallel sweep engine.

    A sweep is a list of independent cells mapped through a pure
    function.  The engine (a) distributes the cells over a fixed
    {!Pool} of worker domains, (b) memoises each cell's result in a
    persistent {!Cache} keyed by a content hash of the cell's inputs,
    and (c) feeds per-stage telemetry to a {!Progress} reporter.

    Determinism contract: results come back in submission order and
    workers never share mutable state, so the output of {!sweep} and
    {!map} is identical to the serial [List.map] for any worker count
    and any mix of cache hits — which is what lets a bench assert
    byte-identical tables between [--jobs 1] and [--jobs N], and
    between cold and warm caches. *)

type t

type ('a, 'b) codec = {
  cell_key : 'a -> string;
      (** content address; must cover every input that affects the
          result *)
  encode : 'b -> string;
  decode : string -> 'b option;
      (** [None] on a corrupt or stale entry — the engine recomputes
          the cell (and reclassifies the probe as a miss) instead of
          failing *)
}

val create :
  ?jobs:int -> ?cache:Cache.t -> ?progress:Progress.t -> unit -> t
(** [jobs] defaults to 1 (serial); [cache] to no memoisation;
    [progress] to a silent reporter. *)

val jobs : t -> int
val cache : t -> Cache.t option
val progress : t -> Progress.t

val map :
  t -> ?label:string -> ?obs:Hcv_obs.Trace.span -> ('a -> 'b) -> 'a list
  -> 'b list
(** Parallel deterministic map, no memoisation (one telemetry stage).
    With [?obs] the stage reports a deterministic ["cells"] counter and
    per-worker busy-time gauges into the span. *)

val sweep : t -> ?label:string -> ?obs:Hcv_obs.Trace.span
  -> codec:('a, 'b) codec -> ('a -> 'b) -> 'a list -> 'b list
(** Memoised parallel map: cells whose key is in the cache are served
    from it; the rest are computed on the pool and stored the moment
    each cell completes, so a killed run checkpoints everything it
    finished.  Duplicate keys within one call are computed
    independently (sweep cells are normally distinct).  With [?obs] the
    stage reports a deterministic ["cells"] counter plus volatile
    ["cache.hits"]/["cache.computed"]/per-worker-busy gauges (cache and
    worker figures are run-dependent, so they never enter the
    deterministic counter view). *)

val shutdown : t -> unit
(** Join the workers and close the cache file.  Idempotent. *)
