type stage_stats = {
  label : string;
  cells : int;
  hits : int;
  computed : int;
  wall_s : float;
}

type live = {
  l_label : string;
  l_start : float;
  mutable l_hits : int;
  mutable l_computed : int;
}

type t = {
  verbose : bool;
  csv : string option;
  ppf : Format.formatter;
  mutex : Mutex.t;
  mutable current : live option;
  mutable finished : stage_stats list;  (* reverse execution order *)
}

let create ?(verbose = false) ?csv ?ppf () =
  let ppf =
    match ppf with Some p -> p | None -> Format.err_formatter
  in
  {
    verbose;
    csv;
    ppf;
    mutex = Mutex.create ();
    current = None;
    finished = [];
  }

let stage_begin t label =
  Mutex.lock t.mutex;
  t.current <-
    Some { l_label = label; l_start = Unix.gettimeofday (); l_hits = 0;
           l_computed = 0 };
  Mutex.unlock t.mutex

let tick t ~hit =
  Mutex.lock t.mutex;
  (match t.current with
  | Some live ->
    if hit then live.l_hits <- live.l_hits + 1
    else live.l_computed <- live.l_computed + 1
  | None -> ());
  Mutex.unlock t.mutex

let csv_row t (s : stage_stats) =
  match t.csv with
  | None -> ()
  | Some path ->
    let fresh = not (Sys.file_exists path) in
    let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        if fresh then output_string oc "stage,cells,hits,computed,wall_s\n";
        Printf.fprintf oc "%s,%d,%d,%d,%.6f\n" s.label s.cells s.hits
          s.computed s.wall_s)

let print_stage t (s : stage_stats) =
  Format.fprintf t.ppf "[%s] %d cells: %d cached, %d computed in %.2fs@."
    s.label s.cells s.hits s.computed s.wall_s

let stage_end t =
  Mutex.lock t.mutex;
  let stats =
    match t.current with
    | None -> None
    | Some live ->
      let s =
        {
          label = live.l_label;
          cells = live.l_hits + live.l_computed;
          hits = live.l_hits;
          computed = live.l_computed;
          wall_s = Unix.gettimeofday () -. live.l_start;
        }
      in
      t.current <- None;
      t.finished <- s :: t.finished;
      Some s
  in
  Mutex.unlock t.mutex;
  match stats with
  | None -> ()
  | Some s ->
    if t.verbose then print_stage t s;
    csv_row t s

let stages t =
  Mutex.lock t.mutex;
  let r = List.rev t.finished in
  Mutex.unlock t.mutex;
  r

let totals t =
  List.fold_left
    (fun acc s ->
      {
        label = "total";
        cells = acc.cells + s.cells;
        hits = acc.hits + s.hits;
        computed = acc.computed + s.computed;
        wall_s = acc.wall_s +. s.wall_s;
      })
    { label = "total"; cells = 0; hits = 0; computed = 0; wall_s = 0.0 }
    (stages t)

let report t =
  List.iter (print_stage t) (stages t);
  let tot = totals t in
  if tot.cells > 0 then
    Format.fprintf t.ppf
      "total: %d cells, %d cached (%.0f%%), %d computed, %.2fs@." tot.cells
      tot.hits
      (100.0 *. float_of_int tot.hits /. float_of_int (max 1 tot.cells))
      tot.computed tot.wall_s
