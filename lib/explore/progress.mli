(** Sweep telemetry: cells done, cache hits, wall-clock per stage.

    All human-readable output goes to [stderr] (or a caller-supplied
    formatter) so that the tables a bench writes to [stdout] stay
    byte-identical whatever the telemetry settings.  Counters are
    mutex-protected — worker domains tick them concurrently.

    With [~csv:path] every finished stage appends a
    [stage,cells,hits,computed,wall_s] row to [path] (header written
    when the file is created). *)

type t

type stage_stats = {
  label : string;
  cells : int;
  hits : int;  (** cells served from the cache *)
  computed : int;
  wall_s : float;
}

val create : ?verbose:bool -> ?csv:string -> ?ppf:Format.formatter -> unit -> t
(** [verbose] (default false) prints a one-line summary per stage.
    [ppf] defaults to a formatter on [stderr]. *)

val stage_begin : t -> string -> unit
val tick : t -> hit:bool -> unit
(** Record one finished cell of the current stage; safe from any
    domain. *)

val stage_end : t -> unit
(** Close the current stage: record wall time, print the summary when
    verbose, append the CSV row when exporting. *)

val stages : t -> stage_stats list
(** Finished stages, in execution order. *)

val totals : t -> stage_stats
(** Aggregate over all finished stages (label ["total"]). *)

val report : t -> unit
(** Print the per-stage table and the total (even when not verbose). *)
