(** Key derivation and serialisation helpers shared by the sweep
    codecs (the higher layers add codecs for their own result types —
    e.g. [Hcv_core.Sweep] for selection choices and pipeline outcomes;
    schedule-bearing values reuse [Hcv_sched.Serialize]).

    Floats embedded in keys or values use the hexadecimal ["%h"] form:
    exact, locale-independent, and stable across runs — two cells get
    the same key iff their inputs are bit-identical. *)

open Hcv_support
open Hcv_machine
open Hcv_energy

val digest : string list -> string
(** Content address of a cell: hex MD5 of the NUL-joined parts. *)

val float_to_string : float -> string
(** Exact ["%h"] encoding. *)

val float_of_string : string -> float option

val q_to_string : Q.t -> string
val q_of_string : string -> Q.t option

val machine_key : Machine.t -> string
(** Fingerprint of the machine shape that affects sweep results: name
    (which encodes the preset and bus count), cluster count and
    frequency grid.  Machines whose clusters are not all the paper
    design (or whose ICN latency differs) additionally append the full
    per-cluster FU/register signature and ICN shape — append-only, so
    paper-machine keys are byte-identical to earlier releases. *)

val params_key : Params.t -> string

val opconfig_to_json : Opconfig.t -> Jsonx.t
val opconfig_of_json : machine:Machine.t -> Jsonx.t -> Opconfig.t option
(** Rebinds the configuration to [machine]; [None] on shape mismatch or
    malformed JSON. *)

val activity_to_json : Activity.t -> Jsonx.t
val activity_of_json : Jsonx.t -> Activity.t option

val floats_to_string : float list -> string
(** A JSON list of exact floats — the value format of sweeps whose
    cells reduce to a few numbers (the bench ablations). *)

val floats_of_string : string -> float list option
