module Inject = Hcv_resilience.Inject
module Retry = Hcv_resilience.Retry

type t = {
  pool : Pool.t;
  cache : Cache.t option;
  progress : Progress.t;
  policy : Retry.policy;
}

type ('a, 'b) codec = {
  cell_key : 'a -> string;
  encode : 'b -> string;
  decode : string -> 'b option;
}

let create ?(jobs = 1) ?cache ?progress ?(policy = Retry.default_policy) () =
  let progress =
    match progress with Some p -> p | None -> Progress.create ()
  in
  { pool = Pool.create ~jobs (); cache; progress; policy }

let jobs t = Pool.jobs t.pool
let cache t = t.cache
let progress t = t.progress

(* Wrap a worker task so its wall time accumulates into a per-worker
   volatile gauge of [obs] (utilisation is run-dependent by nature, so
   it must never land in the deterministic counters). *)
let timed_on_worker obs f =
  if not (Hcv_obs.Trace.enabled obs) then f
  else fun x ->
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Hcv_obs.Trace.vol obs
          (Printf.sprintf "worker%d.busy_s"
             ((Domain.self () :> int)))
          (Unix.gettimeofday () -. t0))
      (fun () -> f x)

let map t ?(label = "map") ?(obs = Hcv_obs.Trace.null) f xs =
  Progress.stage_begin t.progress label;
  Fun.protect
    ~finally:(fun () -> Progress.stage_end t.progress)
    (fun () ->
      Hcv_obs.Trace.add obs "cells" (List.length xs);
      Pool.map t.pool
        (timed_on_worker obs (fun x ->
             let v = f x in
             Progress.tick t.progress ~hit:false;
             v))
        xs)

(* A probed cell: either already answered by the cache, or still to
   compute under its key. *)
type ('a, 'b) probe = Hit of 'b | Todo of string * 'a

(* Supervise one cell: fault points fire first (so chaos runs exercise
   the retry path, not the task body), then the task runs under the
   bounded-retry policy.  A cell that still fails is quarantined as a
   Diag — never cached, so a later run retries it.  Retry and
   quarantine tallies are volatile gauges: they depend on the armed
   fault plan and the cache state, so they must not reach the
   deterministic counter view. *)
let supervised t ~obs ~codec f (key, x) =
  let r =
    Retry.run ~policy:t.policy
      ~on_retry:(fun ~attempt:_ _ ->
        Hcv_obs.Trace.vol obs "resilience.retries" 1.0)
      ~label:key
      (fun () ->
        Inject.raise_if ~key Task_raise;
        if Inject.fire ~key Slow_cell then Unix.sleepf 0.002;
        f x)
  in
  (match r with
  | Ok v -> (
    (* Store as soon as the cell completes — this is the checkpoint a
       killed run resumes from, so it must not wait for the rest of
       the stage. *)
    match t.cache with
    | None -> ()
    | Some c -> Cache.store c ~key (codec.encode v))
  | Error _ -> Hcv_obs.Trace.vol obs "resilience.quarantined" 1.0);
  Progress.tick t.progress ~hit:false;
  r

let sweep t ?(label = "sweep") ?(obs = Hcv_obs.Trace.null) ~codec f xs =
  Progress.stage_begin t.progress label;
  Fun.protect
    ~finally:(fun () -> Progress.stage_end t.progress)
    (fun () ->
      let probes =
        List.map
          (fun x ->
            let key = codec.cell_key x in
            match t.cache with
            | None -> Todo (key, x)
            | Some c -> (
              match Cache.find c key with
              | None -> Todo (key, x)
              | Some s -> (
                match codec.decode s with
                | Some v ->
                  Progress.tick t.progress ~hit:true;
                  Hit v
                | None ->
                  (* Corrupt or stale value: recompute the cell. *)
                  Cache.demote_hit c;
                  Todo (key, x))))
          xs
      in
      let todo =
        List.filter_map
          (function Todo (k, x) -> Some (k, x) | Hit _ -> None)
          probes
      in
      (* Cells served vs computed are cache-state-dependent, so they are
         volatile gauges; only the total cell count is a deterministic
         counter. *)
      Hcv_obs.Trace.add obs "cells" (List.length xs);
      Hcv_obs.Trace.vol obs "cache.hits"
        (float_of_int (List.length xs - List.length todo));
      Hcv_obs.Trace.vol obs "cache.computed"
        (float_of_int (List.length todo));
      let computed =
        Pool.map t.pool
          (timed_on_worker obs (supervised t ~obs ~codec f))
          todo
      in
      (* Re-assemble in submission order. *)
      let rec zip probes computed =
        match probes with
        | [] ->
          assert (computed = []);
          []
        | Hit v :: rest -> Ok v :: zip rest computed
        | Todo _ :: rest -> (
          match computed with
          | v :: vs -> v :: zip rest vs
          | [] -> assert false)
      in
      zip probes computed)

let shutdown t =
  Fun.protect
    ~finally:(fun () -> Option.iter Cache.close t.cache)
    (fun () -> Pool.shutdown t.pool)
