(** A minimal self-contained JSON reader/writer for the result cache
    and the telemetry export (the toolchain has no JSON library and the
    build must not grow dependencies).

    Floats are printed with 17 significant digits, which round-trips
    every finite IEEE-754 double exactly — cache replays must reproduce
    the original bits, not an approximation.  The parser accepts exactly
    the subset the printer emits plus standard JSON whitespace, string
    escapes and [\uXXXX] sequences (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Rejects trailing garbage after the top-level value. *)

(** {2 Accessors} — all return [None] on a shape mismatch. *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** A [Num] that is (within one ulp) an integer. *)

val list : t -> t list option
