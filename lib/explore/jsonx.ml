type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing --------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep small integers readable; exact by construction. *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* ----- parsing ---------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_error "expected %c at %d, got %c" c st.pos c'
  | None -> parse_error "expected %c at %d, got end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else parse_error "bad literal at %d" st.pos

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some '"' ->
        advance st;
        Buffer.add_char buf '"';
        go ()
      | Some '\\' ->
        advance st;
        Buffer.add_char buf '\\';
        go ()
      | Some '/' ->
        advance st;
        Buffer.add_char buf '/';
        go ()
      | Some 'n' ->
        advance st;
        Buffer.add_char buf '\n';
        go ()
      | Some 'r' ->
        advance st;
        Buffer.add_char buf '\r';
        go ()
      | Some 't' ->
        advance st;
        Buffer.add_char buf '\t';
        go ()
      | Some 'b' ->
        advance st;
        Buffer.add_char buf '\b';
        go ()
      | Some 'f' ->
        advance st;
        Buffer.add_char buf '\012';
        go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.s then
          parse_error "truncated \\u escape";
        let hex = String.sub st.s st.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code ->
          st.pos <- st.pos + 4;
          add_utf8 buf code;
          go ()
        | None -> parse_error "bad \\u escape %S" hex)
      | _ -> parse_error "bad escape at %d" st.pos)
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> parse_error "bad number %S at %d" tok start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> parse_error "expected , or ] at %d" st.pos
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> parse_error "expected , or } at %d" st.pos
      in
      Obj (fields [])
    end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> parse_error "unexpected character %c at %d" c st.pos

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ----- accessors -------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let list = function List xs -> Some xs | _ -> None
