module Inject = Hcv_resilience.Inject

type stats = {
  entries : int;
  loaded : int;
  dropped : int;
  hits : int;
  misses : int;
}

type t = {
  dir : string option;
  warn : Hcv_obs.Diag.t -> unit;
  tbl : (string, string) Hashtbl.t;
  mutex : Mutex.t;
      (* workers store completed cells as soon as they finish (that is
         what makes a kill lose at most the cells in flight), so the
         table, the counters and the output channel are all guarded *)
  mutable loaded : int;
  mutable dropped : int;
  mutable hits : int;
  mutable misses : int;
  mutable out : out_channel option;
  mutable needs_newline : bool;
      (* the on-disk file ends mid-line (a previous run was killed
         while appending); start the next append on a fresh line so the
         new entry is not glued onto the truncated one *)
  mutable degraded : bool;
      (* the backing file became unwritable mid-run; keep memoising in
         memory only (warned once) *)
}

let file_name = "cache.jsonl"
let rej_file = "cache.rej"
let tmp_file = "cache.jsonl.tmp"

let in_memory () =
  {
    dir = None;
    warn = ignore;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    loaded = 0;
    dropped = 0;
    hits = 0;
    misses = 0;
    out = None;
    needs_newline = false;
    degraded = false;
  }

(* v3 integrity field: CRC-32 over key \000 value. *)
let crc_payload k v = k ^ "\000" ^ v

let record_to_string k v =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("k", Jsonx.Str k);
         ("v", Jsonx.Str v);
         ("c", Jsonx.Str (Hcv_support.Crc32.hex (Hcv_support.Crc32.string (crc_payload k v))));
       ])

(* A line is good when it parses to an object with string "k"/"v"
   fields and, for v3 records, the "c" CRC matches.  v2 records (no
   "c") stay readable so an existing cache file round-trips. *)
let entry_of_line line =
  match Jsonx.of_string line with
  | Ok j -> (
    match (Option.bind (Jsonx.member "k" j) Jsonx.str,
           Option.bind (Jsonx.member "v" j) Jsonx.str)
    with
    | Some k, Some v -> (
      match Option.bind (Jsonx.member "c" j) Jsonx.str with
      | None -> Some (k, v)
      | Some crc ->
        if Hcv_support.Crc32.check_hex (crc_payload k v) crc then Some (k, v)
        else None)
    | _, _ -> None)
  | Error _ -> None

(* Quarantine a corrupt line: preserved verbatim in cache.rej for
   forensics, dropped from the live table.  Best-effort — quarantine
   failing must not make recovery worse. *)
let quarantine dir lines =
  if lines <> [] then
    try
      let oc =
        open_out_gen
          [ Open_append; Open_creat; Open_wronly ]
          0o644
          (Filename.concat dir rej_file)
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            lines)
    with Sys_error _ -> ()

let load t dir path =
  let ic = open_in_bin path in
  let first_bad = ref None in
  let bad_lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          if String.trim line <> "" then
            match entry_of_line line with
            | Some (k, v) ->
              Hashtbl.replace t.tbl k v;
              t.loaded <- t.loaded + 1
            | None ->
              t.dropped <- t.dropped + 1;
              if !first_bad = None then first_bad := Some !lineno;
              bad_lines := line :: !bad_lines
        done
      with End_of_file -> ());
  quarantine dir (List.rev !bad_lines);
  if t.dropped > 0 then
    t.warn
      (Hcv_obs.Diag.v ~code:"cache-corrupt-lines"
         ~context:
           [
             ("file", path);
             ("loaded", string_of_int t.loaded);
             ("dropped", string_of_int t.dropped);
             ( "first_bad_line",
               match !first_bad with Some n -> string_of_int n | None -> "-" );
             ("quarantine", Filename.concat dir rej_file);
           ]
         "corrupt cache lines quarantined (cells will be recomputed)")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let open_dir ?(warn = ignore) dir =
  let degrade msg =
    warn
      (Hcv_obs.Diag.v ~code:"cache-unwritable"
         ~context:[ ("dir", dir); ("error", msg) ]
         "cache directory unusable; degrading to in-memory (no checkpoints)");
    { (in_memory ()) with warn }
  in
  if Inject.fire ~key:dir Cache_open_fail then degrade "injected open failure"
  else
    match
      (fun () ->
        mkdir_p dir;
        let t = { (in_memory ()) with dir = Some dir; warn } in
        let path = Filename.concat dir file_name in
        if Sys.file_exists path then begin
          load t dir path;
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          if len > 0 then begin
            seek_in ic (len - 1);
            t.needs_newline <- input_char ic <> '\n'
          end;
          close_in_noerr ic
        end;
        t)
        ()
    with
    | t -> t
    | exception Sys_error msg -> degrade msg

let dir t = t.dir

let find t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        None)

let demote_hit t =
  Mutex.protect t.mutex (fun () ->
      if t.hits > 0 then begin
        t.hits <- t.hits - 1;
        t.misses <- t.misses + 1
      end)

let out_channel t dir =
  match t.out with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen
        [ Open_append; Open_creat; Open_wronly ]
        0o644
        (Filename.concat dir file_name)
    in
    t.out <- Some oc;
    oc

(* Called under the mutex.  A write failure must not abort the sweep:
   the cache degrades to memory-only and warns once. *)
let append t dir ~key record =
  match
    (fun () ->
      let oc = out_channel t dir in
      if t.needs_newline then begin
        output_char oc '\n';
        t.needs_newline <- false
      end;
      if Inject.fire ~key Torn_write then begin
        (* Kill simulation: flush only a prefix of the record, exactly
           what an interrupted append leaves on disk.  The in-memory
           entry is intact; the torn tail is quarantined at the next
           open, and the next append starts on a fresh line. *)
        output_string oc
          (String.sub record 0 (max 1 (String.length record / 2)));
        flush oc;
        t.needs_newline <- true
      end
      else begin
        output_string oc record;
        output_char oc '\n';
        (* One flushed line per completed cell: a kill loses at most
           the cells in flight. *)
        flush oc
      end)
      ()
  with
  | () -> ()
  | exception Sys_error msg ->
    t.degraded <- true;
    (match t.out with
    | Some oc ->
      t.out <- None;
      close_out_noerr oc
    | None -> ());
    t.warn
      (Hcv_obs.Diag.v ~code:"cache-unwritable"
         ~context:[ ("dir", dir); ("error", msg) ]
         "cache append failed; degrading to in-memory (no checkpoints)")

let store t ~key value =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.tbl key value;
      match t.dir with
      | None -> ()
      | Some dir ->
        if not t.degraded then append t dir ~key (record_to_string key value))

let compact t =
  Mutex.protect t.mutex (fun () ->
      match t.dir with
      | None -> Ok 0
      | Some dir -> (
        let path = Filename.concat dir file_name in
        let tmp = Filename.concat dir tmp_file in
        (* Flush and release the append channel: the rename below
           replaces the file under it. *)
        (match t.out with
        | Some oc ->
          t.out <- None;
          close_out_noerr oc
        | None -> ());
        let keys =
          List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
        in
        match
          (fun () ->
            let oc = open_out_bin tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                List.iter
                  (fun k ->
                    output_string oc (record_to_string k (Hashtbl.find t.tbl k));
                    output_char oc '\n')
                  keys;
                flush oc);
            if Inject.fire ~key:dir Rename_fail then
              raise (Sys_error "injected rename failure");
            Sys.rename tmp path;
            t.needs_newline <- false;
            List.length keys)
            ()
        with
        | n -> Ok n
        | exception Sys_error msg ->
          (try if Sys.file_exists tmp then Sys.remove tmp
           with Sys_error _ -> ());
          Error
            (Hcv_obs.Diag.v ~code:"compact-rename-failed"
               ~context:[ ("dir", dir); ("error", msg) ]
               "cache compaction aborted; the original file is untouched")))

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        loaded = t.loaded;
        dropped = t.dropped;
        hits = t.hits;
        misses = t.misses;
      })

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.out with
      | None -> ()
      | Some oc ->
        t.out <- None;
        close_out_noerr oc)
