type stats = {
  entries : int;
  loaded : int;
  dropped : int;
  hits : int;
  misses : int;
}

type t = {
  dir : string option;
  tbl : (string, string) Hashtbl.t;
  mutex : Mutex.t;
      (* workers store completed cells as soon as they finish (that is
         what makes a kill lose at most the cells in flight), so the
         table, the counters and the output channel are all guarded *)
  mutable loaded : int;
  mutable dropped : int;
  mutable hits : int;
  mutable misses : int;
  mutable out : out_channel option;
  mutable needs_newline : bool;
      (* the on-disk file ends mid-line (a previous run was killed
         while appending); start the next append on a fresh line so the
         new entry is not glued onto the truncated one *)
}

let file_name = "cache.jsonl"

let in_memory () =
  {
    dir = None;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    loaded = 0;
    dropped = 0;
    hits = 0;
    misses = 0;
    out = None;
    needs_newline = false;
  }

let entry_of_line line =
  match Jsonx.of_string line with
  | Ok j -> (
    match (Option.bind (Jsonx.member "k" j) Jsonx.str,
           Option.bind (Jsonx.member "v" j) Jsonx.str)
    with
    | Some k, Some v -> Some (k, v)
    | _, _ -> None)
  | Error _ -> None

let load t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match entry_of_line line with
            | Some (k, v) ->
              Hashtbl.replace t.tbl k v;
              t.loaded <- t.loaded + 1
            | None -> t.dropped <- t.dropped + 1
        done
      with End_of_file -> ())

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"))

let open_dir dir =
  mkdir_p dir;
  let t = { (in_memory ()) with dir = Some dir } in
  let path = Filename.concat dir file_name in
  if Sys.file_exists path then begin
    load t path;
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    if len > 0 then begin
      seek_in ic (len - 1);
      t.needs_newline <- input_char ic <> '\n'
    end;
    close_in_noerr ic
  end;
  t

let dir t = t.dir

let find t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        None)

let demote_hit t =
  Mutex.protect t.mutex (fun () ->
      if t.hits > 0 then begin
        t.hits <- t.hits - 1;
        t.misses <- t.misses + 1
      end)

let out_channel t dir =
  match t.out with
  | Some oc -> oc
  | None ->
    let oc =
      open_out_gen
        [ Open_append; Open_creat; Open_wronly ]
        0o644
        (Filename.concat dir file_name)
    in
    t.out <- Some oc;
    oc

let store t ~key value =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.tbl key value;
      match t.dir with
      | None -> ()
      | Some dir ->
        let oc = out_channel t dir in
        if t.needs_newline then begin
          output_char oc '\n';
          t.needs_newline <- false
        end;
        output_string oc
          (Jsonx.to_string
             (Jsonx.Obj [ ("k", Jsonx.Str key); ("v", Jsonx.Str value) ]));
        output_char oc '\n';
        (* One flushed line per completed cell: a kill loses at most
           the cells in flight. *)
        flush oc)

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        loaded = t.loaded;
        dropped = t.dropped;
        hits = t.hits;
        misses = t.misses;
      })

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.out with
      | None -> ()
      | Some oc ->
        t.out <- None;
        close_out_noerr oc)
