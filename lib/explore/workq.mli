(** A multi-producer multi-consumer FIFO work queue, protected by a
    mutex and a condition variable — the channel that feeds the
    {!Pool} worker domains.

    [pop] blocks while the queue is empty and open; closing the queue
    wakes every blocked consumer.  A closed queue still drains: [pop]
    keeps returning queued elements and only answers [None] once the
    queue is both closed and empty, so no submitted work is lost on
    shutdown. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** @raise Invalid_argument if the queue has been closed. *)

val pop : 'a t -> 'a option
(** Blocks until an element is available or the queue is closed and
    empty (then [None]). *)

val close : 'a t -> unit
(** Idempotent; wakes all consumers blocked in {!pop}. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
(** Number of queued (not yet popped) elements. *)
