(** Content-addressed persistent memo cache for sweep cells.

    Keys are opaque strings (the engine derives them by hashing every
    input that determines a cell's result); values are the serialized
    results.  On disk the cache is one append-only JSONL file,
    [DIR/cache.jsonl], one object per line.

    {2 Record format (v3)}

    New records are [{"k":…,"v":…,"c":…}], where ["c"] is the CRC-32
    (eight hex digits, {!Hcv_support.Crc32}) of [key ^ "\000" ^ value].
    v2 records (no ["c"] field) remain readable, so a v3 open
    round-trips an existing v2 file; only what v3 appends is
    integrity-checked.

    {2 Crash safety and recovery}

    Appending one flushed line per completed cell makes interruption
    safe by construction: a run killed mid-sweep leaves at most one
    torn final line.  {!open_dir} recovers rather than fails:

    - every unparseable or CRC-mismatched line is {e quarantined} —
      appended verbatim to [DIR/cache.rej] for forensics and counted in
      [stats.dropped] (those cells are simply recomputed);
    - a torn tail (final line without a newline) is quarantined the
      same way, and the next append starts on a fresh line so the new
      record is never glued onto the stub;
    - when anything was dropped, a warning diagnostic (code
      [cache-corrupt-lines], context: loaded/dropped counts and the
      first bad line's number) is passed to [?warn] — so a file that is
      100% corrupt is distinguishable from an empty cache;
    - when the directory cannot be created or written (or the
      [Cache_open_fail] fault point fires), the cache {e degrades to
      in-memory} with a [cache-unwritable] warning instead of raising:
      the sweep still runs, it just stops checkpointing.

    {!compact} rewrites the file as one v3 record per live entry
    (sorted by key), atomically: write [cache.jsonl.tmp], then rename.
    An injected or real rename failure leaves the original file
    untouched.

    All operations are mutex-protected: the engine probes from the
    coordinating domain but workers store each cell the moment it
    completes (waiting for the end of the stage would forfeit the
    checkpoint).

    Fault points ({!Hcv_resilience.Inject}): [Torn_write] (an append
    stops mid-record, exactly as a kill would leave it),
    [Cache_open_fail], [Rename_fail]. *)

type t

type stats = {
  entries : int;  (** live entries in memory *)
  loaded : int;  (** entries recovered from disk at open *)
  dropped : int;  (** corrupt/torn lines quarantined at open *)
  hits : int;
  misses : int;
}

val in_memory : unit -> t
(** No persistence; memoisation within one process only. *)

val open_dir : ?warn:(Hcv_obs.Diag.t -> unit) -> string -> t
(** Creates the directory if needed and loads [cache.jsonl] if present.
    Never raises on I/O or corruption: it quarantines bad lines and
    degrades to an in-memory cache when the directory is unusable,
    reporting both through [?warn] (default: ignore). *)

val dir : t -> string option
(** [None] for in-memory caches, including a degraded {!open_dir}. *)

val rej_file : string
(** Quarantine file name under the cache directory, ["cache.rej"]. *)

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val store : t -> key:string -> string -> unit
(** Inserts (replacing any previous value) and, for a persistent cache,
    appends a v3 record to disk and flushes so it survives a kill.  A
    write failure degrades the cache to in-memory (warned once via the
    [?warn] passed at open) rather than raising. *)

val demote_hit : t -> unit
(** Reclassify the most recent hit as a miss — used by the engine when
    a cached value fails to decode and the cell is recomputed. *)

val compact : t -> (int, Hcv_obs.Diag.t) result
(** Rewrite [cache.jsonl] as one v3 record per live entry, sorted by
    key — dropping superseded duplicates, corrupt lines and the torn
    tail — via write-temp-then-rename, so a crash (or an injected
    [Rename_fail]) at any point leaves the original file intact.
    Returns the number of records written; [Ok 0] on an in-memory
    cache.  Errors with [compact-rename-failed] / [compact-io] and
    removes the temp file. *)

val stats : t -> stats

val close : t -> unit
(** Flush and close the backing file.  Idempotent. *)
