(** Content-addressed persistent memo cache for sweep cells.

    Keys are opaque strings (the engine derives them by hashing every
    input that determines a cell's result); values are the serialized
    results.  On disk the cache is one append-only JSONL file,
    [DIR/cache.jsonl], one [{"k":…,"v":…}] object per line.  Appending
    a line per completed cell makes interruption safe by construction:
    a run killed mid-sweep leaves at most one truncated final line,
    which {!open_dir} silently skips along with any other corrupt line
    (those cells are simply recomputed).  This is what makes repeated
    bench runs and [--resume] skip completed cells.

    All operations are mutex-protected: the engine probes from the
    coordinating domain but workers store each cell the moment it
    completes (waiting for the end of the stage would forfeit the
    checkpoint). *)

type t

type stats = {
  entries : int;  (** live entries in memory *)
  loaded : int;  (** entries recovered from disk at open *)
  dropped : int;  (** corrupt lines skipped at open *)
  hits : int;
  misses : int;
}

val in_memory : unit -> t
(** No persistence; memoisation within one process only. *)

val open_dir : string -> t
(** Creates the directory if needed and loads [cache.jsonl] if present.
    @raise Sys_error if the directory cannot be created or the file
    cannot be read. *)

val dir : t -> string option

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val store : t -> key:string -> string -> unit
(** Inserts (replacing any previous value) and, for a persistent cache,
    appends the entry to disk and flushes so it survives a kill. *)

val demote_hit : t -> unit
(** Reclassify the most recent hit as a miss — used by the engine when
    a cached value fails to decode and the cell is recomputed. *)

val stats : t -> stats

val close : t -> unit
(** Flush and close the backing file.  Idempotent. *)
