type 'a t = {
  q : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create () =
  {
    q = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let push t x =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Workq.push: queue is closed"
  end;
  Queue.push x t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n
