module R = Hcv_resilience

type conn = {
  fd : Unix.file_descr;
  frame : Frame.t;
  out : Buffer.t;  (** rendered responses not yet handed to the writer *)
  mutable wip : string;  (** the chunk currently being written *)
  mutable sent : int;  (** prefix of [wip] already written *)
  mutable closed : bool;
  mutable eof : bool;
      (** peer half-closed: stop reading, answer what is queued, then
          reap *)
  mutable last_read : float;
      (** responsive-clock time of the last byte received *)
  mutable line_started : float;
      (** responsive-clock time the torn line in progress began — a
          slowloris peer dribbling one byte at a time keeps [last_read]
          fresh, so the slow-client timeout must measure how long a
          line has failed to complete, not how recently bytes came *)
}

let out_len c = String.length c.wip - c.sent + Buffer.length c.out

type t = {
  listen : Unix.file_descr;
  dispatch : Dispatch.t;
  batch_max : int;
  max_line : int;
  max_requests : int option;
  idle_timeout_s : float;
  slow_timeout_s : float;
  max_pending : int;
  max_out : int;
  drain_grace_s : float;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable answered : int;
  mutable drain_deadline : float option;
  mutable blocked_s : float;
      (** cumulative seconds the reactor spent inside [Dispatch.handle],
          during which no peer could possibly be read from *)
}

(* The hygiene clock: wall time minus time the reactor itself was
   blocked computing a batch.  A single-threaded reactor that just
   spent three seconds scheduling must not reap a peer whose line was
   torn right before the batch — the peer never got a chance to finish.
   A genuine slowloris still accrues responsive time and is reaped. *)
let now_r t = Unix.gettimeofday () -. t.blocked_s

(* Claiming the endpoint must never steal it from a live daemon or
   delete an unrelated file: only a socket file nobody accepts on is
   stale, and only that may be unlinked. *)
let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      failwith (Printf.sprintf "%s: a daemon is already listening there" path)
    else (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ ->
    failwith (Printf.sprintf "%s: refusing to replace a non-socket file" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let create ?(batch_max = 256) ?(max_line = 1 lsl 20) ?max_requests
    ?(idle_timeout_s = 300.) ?(slow_timeout_s = 10.) ?(max_pending = 512)
    ?(max_out = 8 lsl 20) ?(drain_grace_s = 5.) ~dispatch listen =
  Unix.set_nonblock listen;
  let t =
    {
      listen;
      dispatch;
      batch_max;
      max_line;
      max_requests;
      idle_timeout_s;
      slow_timeout_s;
      max_pending;
      max_out;
      drain_grace_s;
      conns = [];
      stopping = false;
      answered = 0;
      drain_deadline = None;
      blocked_s = 0.0;
    }
  in
  Dispatch.set_gauges dispatch (fun () ->
      [
        ( "queue_depth",
          float_of_int
            (List.fold_left (fun a c -> a + Frame.queued c.frame) 0 t.conns)
        );
        ("inflight", float_of_int (List.length t.conns));
      ]);
  t

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end;
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let queue_line c line =
  Buffer.add_string c.out line;
  Buffer.add_char c.out '\n'

(* Write as much buffered output as the socket accepts.  Queued
   responses are promoted from [out] to [wip] with one
   [Buffer.contents] per chunk; a partial write only advances [sent],
   so a slow reader with a large backlog never re-materializes the
   buffer.  EPIPE or a reset drops the connection (its remaining
   responses with it).  A firing [Slow_write] fault shrinks each write
   to one byte — a pure granularity perturbation, so chaos runs keep
   the exact response bytes. *)
let rec flush_conn t c =
  if c.sent = String.length c.wip then begin
    c.wip <- "";
    c.sent <- 0;
    if Buffer.length c.out > 0 then begin
      c.wip <- Buffer.contents c.out;
      Buffer.clear c.out
    end
  end;
  let len = String.length c.wip - c.sent in
  let len = if len > 1 && R.Inject.fire R.Inject.Slow_write then 1 else len in
  if len > 0 then
    match Unix.write_substring c.fd c.wip c.sent len with
    | n ->
      c.sent <- c.sent + n;
      if c.sent = String.length c.wip then flush_conn t c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t c

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        t.conns
        @ [
            {
              fd;
              frame = Frame.create ~max_line:t.max_line ();
              out = Buffer.create 256;
              wip = "";
              sent = 0;
              closed = false;
              eof = false;
              last_read = now_r t;
              line_started = now_r t;
            };
          ];
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* [Conn_close] simulates a peer reset (the slot is reclaimed, nothing
   else is disturbed); [Conn_stall] a reactor hiccup; [Torn_frame]
   shrinks the read to one byte, exercising every torn-line resume path
   in {!Frame} without changing what was received. *)
let read_ready t c =
  if R.Inject.fire R.Inject.Conn_close then close_conn t c
  else begin
    if R.Inject.fire R.Inject.Conn_stall then Unix.sleepf 0.002;
    let size = if R.Inject.fire R.Inject.Torn_frame then 1 else 65536 in
    let buf = Bytes.create size in
    match Unix.read c.fd buf 0 size with
    | 0 ->
      (* Half-close: the torn line in progress can never complete, but
         complete pipelined lines still get their answers before the
         slot is reclaimed. *)
      c.eof <- true;
      ignore (Frame.drop_partial c.frame)
    | n ->
      c.last_read <- now_r t;
      Frame.feed c.frame (Bytes.sub_string buf 0 n);
      if Frame.pending c.frame = 0 then c.line_started <- c.last_read
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t c
  end

(* Salvage an id for a shed line the way [Proto.parse] errors do, so
   the overloaded answer can still be correlated. *)
let shed_line t c ~queue_depth line =
  let id =
    match Proto.parse line with
    | Ok { Proto.id; _ } -> Some id
    | Error (id, _) -> id
  in
  queue_line c (Proto.error_line ~id (Proto.overloaded_diag ~queue_depth));
  Dispatch.note_shed t.dispatch;
  t.answered <- t.answered + 1

(* Admission control: a connection whose complete-line backlog exceeds
   [max_pending] gets the oldest excess answered [overloaded]
   immediately — deterministic shedding that costs no scheduling work,
   keeps per-connection response order, and only ever penalises the
   flooding connection. *)
let shed_excess t c =
  let depth = Frame.queued c.frame in
  if depth > t.max_pending then
    for _ = 1 to depth - t.max_pending do
      match Frame.pop c.frame with
      | None -> ()
      | Some (Frame.Oversized n) ->
        queue_line c (Proto.error_line ~id:None (Proto.oversized_diag n));
        t.answered <- t.answered + 1
      | Some (Frame.Line line) -> shed_line t c ~queue_depth:depth line
    done

let run ?obs t =
  let finally () =
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    t.conns <- []
  in
  let flushed () = List.for_all (fun c -> out_len c = 0) t.conns in
  let residual () =
    List.exists (fun c -> Frame.queued c.frame > 0) t.conns
  in
  let max_reached () =
    match t.max_requests with Some m -> t.answered >= m | None -> false
  in
  (* Draining: stop accepting and reading, answer every complete line
     already buffered, flush, exit.  [drain_grace_s] bounds how long a
     peer refusing to read its responses can hold the exit hostage. *)
  let draining () = t.stopping || max_reached () in
  Fun.protect ~finally (fun () ->
      while not (draining () && (not (residual ())) && flushed ()) do
        let now = now_r t in
        (if draining () then
           match t.drain_deadline with
           | None -> t.drain_deadline <- Some (now +. t.drain_grace_s)
           | Some dl ->
             if now > dl then List.iter (fun c -> close_conn t c) t.conns);
        if not (draining () && (not (residual ())) && flushed ()) then begin
          let rds =
            if draining () then []
            else
              [ t.listen ]
              @ List.filter_map
                  (fun c -> if c.eof then None else Some c.fd)
                  t.conns
          in
          let wrs =
            List.filter_map
              (fun c -> if out_len c > 0 then Some c.fd else None)
              t.conns
          in
          (* A round that filled [batch_max] leaves complete lines
             queued in the frames: poll instead of blocking so they are
             served without waiting for new socket bytes.  Otherwise
             sleep at most until the next hygiene deadline. *)
          let timeout =
            if residual () then 0.0
            else if draining () then 0.05
            else if t.conns = [] then -1.0
            else
              let next =
                List.fold_left
                  (fun acc c ->
                    let dl =
                      if Frame.pending c.frame > 0 then
                        c.line_started +. t.slow_timeout_s
                      else c.last_read +. t.idle_timeout_s
                    in
                    Float.min acc dl)
                  infinity t.conns
              in
              if Float.is_finite next then Float.max 0.01 (next -. now)
              else -1.0
          in
          (match Unix.select rds wrs [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rd, wr, _ ->
            if List.mem t.listen rd then accept_ready t;
            List.iter
              (fun c ->
                if (not c.closed) && List.mem c.fd rd then read_ready t c)
              t.conns;
            List.iter (fun c -> if not c.closed then shed_excess t c) t.conns;
            (* Drain complete lines: control ops and parse errors answer
               immediately; run requests accumulate into this round's
               batch (per-connection arrival order is preserved because
               a connection's lines land in the batch in pop order and
               the responses are queued back in batch order). *)
            let batch = ref [] (* (conn, envelope), reversed *) in
            let batch_n = ref 0 in
            List.iter
              (fun c ->
                let rec drain () =
                  if !batch_n >= t.batch_max then ()
                  else
                    match Frame.pop c.frame with
                    | None -> ()
                    | Some (Frame.Oversized n) ->
                      queue_line c
                        (Proto.error_line ~id:None (Proto.oversized_diag n));
                      t.answered <- t.answered + 1;
                      drain ()
                    | Some (Frame.Line line) ->
                      (match Proto.parse line with
                      | Error (id, d) ->
                        queue_line c (Proto.error_line ~id d);
                        t.answered <- t.answered + 1
                      | Ok ({ Proto.req = Proto.Shutdown; _ } as env) ->
                        t.stopping <- true;
                        batch := (c, env) :: !batch;
                        incr batch_n
                      | Ok env ->
                        batch := (c, env) :: !batch;
                        incr batch_n);
                      drain ()
                in
                drain ())
              t.conns;
            let batch = List.rev !batch in
            if batch <> [] then begin
              let was_draining = draining () in
              let t0 = Unix.gettimeofday () in
              let lines =
                Dispatch.handle t.dispatch ?obs (List.map snd batch)
              in
              t.blocked_s <- t.blocked_s +. (Unix.gettimeofday () -. t0);
              List.iter2
                (fun (c, _) line ->
                  if not c.closed then queue_line c line;
                  if was_draining then Dispatch.note_drained t.dispatch;
                  t.answered <- t.answered + 1)
                batch lines
            end;
            List.iter
              (fun c ->
                if
                  (not c.closed)
                  && (List.mem c.fd wr || out_len c > 0)
                then flush_conn t c)
              t.conns;
            (* Connection hygiene, after the flush so transient output
               bursts are not mistaken for a slow reader: reap peers
               whose backlog blew [max_out], half-closed peers with
               nothing left to answer, slowloris peers dribbling a torn
               line, and idle peers — all on the responsive clock. *)
            let now = now_r t in
            List.iter
              (fun c ->
                if not c.closed then
                  if out_len c > t.max_out then close_conn t c
                  else if
                    c.eof && Frame.queued c.frame = 0 && out_len c = 0
                  then close_conn t c
                  else if
                    Frame.pending c.frame > 0
                    && now -. c.line_started > t.slow_timeout_s
                  then close_conn t c
                  else if
                    Frame.pending c.frame = 0
                    && Frame.queued c.frame = 0
                    && out_len c = 0
                    && now -. c.last_read > t.idle_timeout_s
                  then close_conn t c)
              t.conns)
        end
      done)
