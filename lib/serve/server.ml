type conn = {
  fd : Unix.file_descr;
  frame : Frame.t;
  out : Buffer.t;  (** rendered responses not yet handed to the writer *)
  mutable wip : string;  (** the chunk currently being written *)
  mutable sent : int;  (** prefix of [wip] already written *)
  mutable closed : bool;
}

let out_len c = String.length c.wip - c.sent + Buffer.length c.out

type t = {
  listen : Unix.file_descr;
  dispatch : Dispatch.t;
  batch_max : int;
  max_line : int;
  max_requests : int option;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable answered : int;
}

(* Claiming the endpoint must never steal it from a live daemon or
   delete an unrelated file: only a socket file nobody accepts on is
   stale, and only that may be unlinked. *)
let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    if live then
      failwith (Printf.sprintf "%s: a daemon is already listening there" path)
    else (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ ->
    failwith (Printf.sprintf "%s: refusing to replace a non-socket file" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let create ?(batch_max = 256) ?(max_line = 1 lsl 20) ?max_requests ~dispatch
    listen =
  Unix.set_nonblock listen;
  {
    listen;
    dispatch;
    batch_max;
    max_line;
    max_requests;
    conns = [];
    stopping = false;
    answered = 0;
  }

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end;
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let queue_line c line =
  Buffer.add_string c.out line;
  Buffer.add_char c.out '\n'

(* Write as much buffered output as the socket accepts.  Queued
   responses are promoted from [out] to [wip] with one
   [Buffer.contents] per chunk; a partial write only advances [sent],
   so a slow reader with a large backlog never re-materializes the
   buffer.  EPIPE or a reset drops the connection (its remaining
   responses with it). *)
let rec flush_conn t c =
  if c.sent = String.length c.wip then begin
    c.wip <- "";
    c.sent <- 0;
    if Buffer.length c.out > 0 then begin
      c.wip <- Buffer.contents c.out;
      Buffer.clear c.out
    end
  end;
  let len = String.length c.wip - c.sent in
  if len > 0 then
    match Unix.write_substring c.fd c.wip c.sent len with
    | n ->
      c.sent <- c.sent + n;
      if c.sent = String.length c.wip then flush_conn t c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t c

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.conns <-
        t.conns
        @ [
            {
              fd;
              frame = Frame.create ~max_line:t.max_line ();
              out = Buffer.create 256;
              wip = "";
              sent = 0;
              closed = false;
            };
          ];
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let read_ready t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t c
  | n -> Frame.feed c.frame (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t c

let run ?obs t =
  let finally () =
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      t.conns;
    t.conns <- []
  in
  let drained () = List.for_all (fun c -> out_len c = 0) t.conns in
  let residual () =
    List.exists (fun c -> Frame.queued c.frame > 0) t.conns
  in
  let max_reached () =
    match t.max_requests with Some m -> t.answered >= m | None -> false
  in
  Fun.protect ~finally (fun () ->
      (* Exit once shutdown is acknowledged, every line buffered before
         it is answered and every response byte flushed — or once the
         request cap is reached and flushed (lines still queued then
         are beyond the cap and stay unanswered by design). *)
      while
        (not (t.stopping && (not (residual ())) && drained ()))
        && not (max_reached () && drained ())
      do
        let rds =
          (if t.stopping || max_reached () then [] else [ t.listen ])
          @ List.map (fun c -> c.fd) t.conns
        in
        let wrs =
          List.filter_map
            (fun c -> if out_len c > 0 then Some c.fd else None)
            t.conns
        in
        (* A round that filled [batch_max] leaves complete lines queued
           in the frames: poll instead of blocking so they are served
           without waiting for new socket bytes. *)
        let timeout =
          if residual () && not (max_reached ()) then 0.0 else -1.0
        in
        (match Unix.select rds wrs [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rd, wr, _ ->
          if List.mem t.listen rd then accept_ready t;
          List.iter
            (fun c ->
              if (not c.closed) && List.mem c.fd rd then read_ready t c)
            t.conns;
          (* Drain complete lines: control ops and parse errors answer
             immediately; run requests accumulate into this round's
             batch (per-connection arrival order is preserved because a
             connection's lines land in the batch in pop order and the
             responses are queued back in batch order). *)
          if not (max_reached ()) then begin
            let batch = ref [] (* (conn, envelope), reversed *) in
            let batch_n = ref 0 in
            List.iter
              (fun c ->
                let rec drain () =
                  if !batch_n >= t.batch_max then ()
                  else
                    match Frame.pop c.frame with
                    | None -> ()
                    | Some (Frame.Oversized n) ->
                      queue_line c
                        (Proto.error_line ~id:None (Proto.oversized_diag n));
                      t.answered <- t.answered + 1;
                      drain ()
                    | Some (Frame.Line line) ->
                      (match Proto.parse line with
                      | Error (id, d) ->
                        queue_line c (Proto.error_line ~id d);
                        t.answered <- t.answered + 1
                      | Ok ({ Proto.req = Proto.Shutdown; _ } as env) ->
                        t.stopping <- true;
                        batch := (c, env) :: !batch;
                        incr batch_n
                      | Ok env ->
                        batch := (c, env) :: !batch;
                        incr batch_n);
                      drain ()
                in
                drain ())
              t.conns;
            let batch = List.rev !batch in
            if batch <> [] then begin
              let lines =
                Dispatch.handle t.dispatch ?obs (List.map snd batch)
              in
              List.iter2
                (fun (c, _) line ->
                  if not c.closed then queue_line c line;
                  t.answered <- t.answered + 1)
                batch lines
            end
          end;
          List.iter
            (fun c ->
              if
                (not c.closed)
                && (List.mem c.fd wr || out_len c > 0)
              then flush_conn t c)
            t.conns)
      done)
