(** Deterministic request-stream generation and latency statistics for
    the load generator ([hcvliw loadgen]) and the serve bench.

    The stream is a pure function of the seed, so two runs of the same
    (seed, n) — sequential or concurrent, cold or warm cache — issue
    byte-identical request lines in the same global order, which is
    what makes server responses byte-comparable across runs. *)

type mix =
  | Clean  (** well-formed explore/schedule requests only *)
  | Full
      (** adds malformed lines, unknown ops and strict-budget requests
          that must come back as structured errors — the adversarial
          stream the daemon is expected to survive *)

val requests : ?mix:mix -> ?n_loops:int -> seed:int -> int -> string list
(** [requests ~seed n] is the [n] request lines, in issue order; line
    [i] carries id ["r%06d" i] when it is well-formed.  [mix] defaults
    to [Full]; [n_loops] (default 2) sizes the per-benchmark workloads
    so latency is dominated by scheduling, not generation. *)

val with_deadline : int -> string -> string
(** Append a ["deadline_ms"] field to a generated request line
    (deterministic re-rendering); lines that are not JSON objects, or
    already carry one, pass through untouched.  [with_deadline 0] turns
    a clean stream into the fast-fail-probe cohort. *)

(** How a response line should be tallied: a success, a load-shed
    [overloaded] error, a [deadline-exceeded] error, or any other
    structured error.  Transport failures (the connection died before a
    response) are recorded by the client loop, not classified here. *)
type outcome_class = Ok_answer | Shed | Deadline_exceeded | Error_answer

val classify : string -> outcome_class

(** {2 Personas}

    Client behaviours for the chaos/soak drill and the overload tests.
    Each takes [connect] (a fresh connected descriptor per call) and
    owns every descriptor it opens. *)

val run_requests :
  connect:(unit -> Unix.file_descr) -> string list
  -> (string * string option) list
(** The well-behaved persona: one connection, each line sent and its
    response awaited before the next.  [None] marks a transport
    failure (connection closed before the answer). *)

val run_slowloris :
  connect:(unit -> Unix.file_descr) -> ?duration_s:float
  -> ?interval_s:float -> ?reap_grace_s:float -> unit -> bool
(** Dribble a request line one byte at a time, never completing it,
    for up to [duration_s] (default 0.5 s; a byte every [interval_s],
    default 5 ms), then wait up to [reap_grace_s] (default 20 s) for
    the server to reap the connection.  Returns [true] iff it did —
    what the drill asserts.  The grace matters because the server's
    slow timeout runs on its responsive clock, which advances slowly
    while the reactor is busy computing batches. *)

val run_disconnect :
  connect:(unit -> Unix.file_descr) -> string list -> unit
(** Pipeline complete lines without reading responses, write a torn
    line, and disconnect mid-frame.  The server must reclaim the slot
    without disturbing other connections. *)

val run_burst :
  connect:(unit -> Unix.file_descr) -> string list -> string list
(** Pipeline every line before reading anything, then collect what
    comes back until one response per line arrived or the server
    closed the connection.  Bursting more lines than the server's
    per-connection backlog cap is how the drill provokes [overloaded]
    sheds. *)

val run_flood :
  connect:(unit -> Unix.file_descr) -> ?line_bytes:int -> int -> string list
(** {!run_burst} with [n] oversize junk lines ([line_bytes] each,
    default 64 KiB): every answer must be a structured [oversized-line]
    (or shed) error, never a crash. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,1] — nearest-rank on the sorted
    sample; [nan] on the empty list. *)

val summary_json :
  ?shed:int -> ?deadline_exceeded:int -> ?transport:int -> requests:int
  -> concurrency:int -> wall_ns:float -> ok:int -> errors:int
  -> latencies_ns:float list -> unit -> Hcv_explore.Jsonx.t
(** The loadgen/bench result object: requests/s plus p50/p99 latency.
    [errors] counts structured error answers; [shed] and
    [deadline_exceeded] break out the overload subsets; [transport]
    counts requests that never got an answer.  Callers must compute
    percentiles over successfully answered requests only — a shed or
    dead connection is not a latency sample. *)
