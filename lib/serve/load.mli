(** Deterministic request-stream generation and latency statistics for
    the load generator ([hcvliw loadgen]) and the serve bench.

    The stream is a pure function of the seed, so two runs of the same
    (seed, n) — sequential or concurrent, cold or warm cache — issue
    byte-identical request lines in the same global order, which is
    what makes server responses byte-comparable across runs. *)

type mix =
  | Clean  (** well-formed explore/schedule requests only *)
  | Full
      (** adds malformed lines, unknown ops and strict-budget requests
          that must come back as structured errors — the adversarial
          stream the daemon is expected to survive *)

val requests : ?mix:mix -> ?n_loops:int -> seed:int -> int -> string list
(** [requests ~seed n] is the [n] request lines, in issue order; line
    [i] carries id ["r%06d" i] when it is well-formed.  [mix] defaults
    to [Full]; [n_loops] (default 2) sizes the per-benchmark workloads
    so latency is dominated by scheduling, not generation. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,1] — nearest-rank on the sorted
    sample; [nan] on the empty list. *)

val summary_json :
  requests:int -> concurrency:int -> wall_ns:float -> ok:int -> errors:int
  -> latencies_ns:float list -> Hcv_explore.Jsonx.t
(** The loadgen/bench result object: requests/s plus p50/p99 latency. *)
