(** The daemon's socket loop: a single-threaded accept/read/dispatch/
    write reactor over a listening Unix-domain or TCP socket.

    Concurrency comes from the {!Dispatch} engine's worker pool, not
    from connection threads: the loop drains every complete request
    line currently readable across all connections, answers control
    ops immediately, and hands the accumulated run requests to
    {!Dispatch.handle} as {e one batch} — while that batch computes,
    further requests queue in the kernel buffers and form the next
    batch.  Under concurrent load the batch width approaches the
    connection count, and every request in a batch shares the pool, the
    warm cache and the deduplication of identical work.

    Per-connection ordering: responses are written in the order the
    connection's requests arrived.  A malformed or oversized line gets
    its error response in the same stream position; it never closes the
    connection or stops the daemon.

    A round takes at most [batch_max] run requests; complete lines left
    queued past the cap are served by immediately following zero-timeout
    rounds, so a client that pipelines more than one batch's worth never
    waits on new socket traffic.

    The loop exits when a [shutdown] request has been answered, every
    line buffered before it has been answered and all response bytes
    are flushed — or when [max_requests] answers have been written out
    (lines still queued then stay unanswered by design). *)

type t

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket.  A stale socket file at
    that path — one no daemon accepts connections on — is unlinked
    first; raises [Failure] if a daemon is already listening there or
    the path holds something that is not a socket. *)

val listen_tcp : host:string -> port:int -> Unix.file_descr
(** Bind (with [SO_REUSEADDR]) and listen on a TCP socket. *)

val create :
  ?batch_max:int -> ?max_line:int -> ?max_requests:int
  -> dispatch:Dispatch.t -> Unix.file_descr -> t
(** [batch_max] (default 256) caps how many run requests one engine
    fan-out takes; [max_line] (default 1 MiB) is the {!Frame} line
    bound; [max_requests] (default unlimited) stops the daemon after
    answering that many requests — the self-terminating mode CI smoke
    jobs use.  The listening descriptor is owned by the server and
    closed by {!run}. *)

val run : ?obs:Hcv_obs.Trace.span -> t -> unit
(** Serve until shutdown.  Closes every descriptor before returning;
    the dispatcher is left running (callers own its lifecycle). *)
