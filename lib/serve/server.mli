(** The daemon's socket loop: a single-threaded accept/read/dispatch/
    write reactor over a listening Unix-domain or TCP socket.

    Concurrency comes from the {!Dispatch} engine's worker pool, not
    from connection threads: the loop drains every complete request
    line currently readable across all connections, answers control
    ops immediately, and hands the accumulated run requests to
    {!Dispatch.handle} as {e one batch} — while that batch computes,
    further requests queue in the kernel buffers and form the next
    batch.  Under concurrent load the batch width approaches the
    connection count, and every request in a batch shares the pool, the
    warm cache and the deduplication of identical work.

    Per-connection ordering: responses are written in the order the
    connection's requests arrived.  A malformed or oversized line gets
    its error response in the same stream position; it never closes the
    connection or stops the daemon.

    A round takes at most [batch_max] run requests; complete lines left
    queued past the cap are served by immediately following zero-timeout
    rounds, so a client that pipelines more than one batch's worth never
    waits on new socket traffic.

    {2 Overload protection}

    The reactor defends itself; no client behaviour can stall it:

    - {e Admission control}: a connection whose complete-line backlog
      exceeds [max_pending] gets the oldest excess answered with
      structured [overloaded] errors (carrying the queue depth) —
      deterministic shedding that costs no scheduling work and only
      penalises the flooding connection.
    - {e Slow readers}: a peer whose unread response backlog exceeds
      [max_out] bytes is closed.
    - {e Slowloris}: a peer whose line in progress fails to complete
      within [slow_timeout_s] is closed — dribbling a byte at a time
      does not reset the clock.  A fully idle peer is closed after
      [idle_timeout_s].  Both timeouts run on the {e responsive clock}:
      time the reactor itself spent blocked computing a batch is not
      held against any peer, so a long dispatch never gets a
      well-behaved connection reaped mid-line.
    - {e Half-close}: EOF drops the torn line in progress
      ({!Frame.drop_partial}); complete pipelined lines are still
      answered and flushed before the slot is reclaimed.  A mid-frame
      disconnect never disturbs other connections.
    - {e Graceful drain}: once a [shutdown] is read or [max_requests]
      answers are written, the loop stops accepting and reading,
      answers every complete line already buffered, flushes, and exits;
      [drain_grace_s] bounds how long an unresponsive peer can hold the
      exit hostage.

    Chaos: the {!Hcv_resilience.Inject} points [Conn_stall] /
    [Conn_close] / [Torn_frame] / [Slow_write] perturb the reactor's
    timing and granularity (and, for [Conn_close], simulate peer
    resets).  Torn reads and slow writes cannot change response bytes,
    which is what the soak drill's byte-identity assertion leans on. *)

type t

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket.  A stale socket file at
    that path — one no daemon accepts connections on — is unlinked
    first; raises [Failure] if a daemon is already listening there or
    the path holds something that is not a socket. *)

val listen_tcp : host:string -> port:int -> Unix.file_descr
(** Bind (with [SO_REUSEADDR]) and listen on a TCP socket. *)

val create :
  ?batch_max:int -> ?max_line:int -> ?max_requests:int
  -> ?idle_timeout_s:float -> ?slow_timeout_s:float -> ?max_pending:int
  -> ?max_out:int -> ?drain_grace_s:float -> dispatch:Dispatch.t
  -> Unix.file_descr -> t
(** [batch_max] (default 256) caps how many run requests one engine
    fan-out takes; [max_line] (default 1 MiB) is the {!Frame} line
    bound; [max_requests] (default unlimited) drains the daemon after
    answering that many requests — the self-terminating mode CI smoke
    jobs use.  Overload knobs (defaults in parentheses):
    [idle_timeout_s] (300) and [slow_timeout_s] (10) reap idle and
    slowloris peers, [max_pending] (512) bounds a connection's
    complete-line backlog before shedding, [max_out] (8 MiB) bounds its
    unread response backlog before closing, [drain_grace_s] (5) bounds
    the graceful drain.  The server registers its live gauges
    ([queue_depth], [inflight]) with the dispatcher's stats op.  The
    listening descriptor is owned by the server and closed by
    {!run}. *)

val run : ?obs:Hcv_obs.Trace.span -> t -> unit
(** Serve until shutdown (or [max_requests]), then drain.  Closes every
    descriptor before returning; the dispatcher is left running
    (callers own its lifecycle). *)
