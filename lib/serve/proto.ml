module J = Hcv_explore.Jsonx
module Diag = Hcv_obs.Diag

type machine_choice =
  | Default
  | Family of string
  | Desc of string

type machine_spec = {
  buses : int;
  grid_steps : int option;
  machine : machine_choice;
}

type source =
  | Bench of { bench : string; seed : int; n_loops : int option }
  | Dsl of string
  | Graph of J.t

type work = {
  name : string;
  source : source;
  spec : machine_spec;
  budget : int option;
  deadline_ms : int option;
  degrade : bool;
  frontier : Hcv_core.Frontier.spec option;
}

type request = Ping | Stats | Shutdown | Run of work

type envelope = { id : string; req : request }

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Run { frontier = Some _; _ } -> "frontier"
  | Run { source = Bench _; _ } -> "explore"
  | Run { source = Dsl _ | Graph _; _ } -> "schedule"

(* ----- parsing ----------------------------------------------------- *)

let bad ?id ?context fmt =
  Format.kasprintf
    (fun msg ->
      Error (id, Diag.v ~stage:"serve" ~code:"bad-request" ?context msg))
    fmt

let field j k = J.member k j
let str_field j k = Option.bind (field j k) J.str
let int_field j k = Option.bind (field j k) J.int
let bool_field j k =
  Option.bind (field j k) (function J.Bool b -> Some b | _ -> None)

(* An [int] field that must be a positive integer when present. *)
let pos_field ?id j k =
  match field j k with
  | None -> Ok None
  | Some v -> (
    match J.int v with
    | Some n when n > 0 -> Ok (Some n)
    | Some _ | None -> bad ?id "field %S must be a positive integer" k)

(* Like [pos_field] but admitting zero: a zero deadline is the
   fast-fail probe ("answer with whatever you already have"). *)
let nonneg_field ?id j k =
  match field j k with
  | None -> Ok None
  | Some v -> (
    match J.int v with
    | Some n when n >= 0 -> Ok (Some n)
    | Some _ | None -> bad ?id "field %S must be a non-negative integer" k)

(* The optional "machine" field: a family name (string) or an inline
   machine-description object.  Both are validated at the protocol
   boundary; descriptions are re-serialised to the canonical text, so
   equal machines key equally downstream whatever the client's
   formatting. *)
let parse_machine ?id j =
  match field j "machine" with
  | None -> Ok Default
  | Some (J.Str f) ->
    if List.mem f Hcv_machine.Family.names then Ok (Family f)
    else
      bad ?id "unknown machine family %S (known: %s)" f
        (String.concat ", " Hcv_machine.Family.names)
  | Some (J.Obj _ as d) -> (
    match Hcv_explore.Machdesc.of_json d with
    | Ok m -> Ok (Desc (Hcv_explore.Machdesc.to_string m))
    | Error msg -> bad ?id "bad machine description: %s" msg)
  | Some _ ->
    bad ?id
      "field \"machine\" must be a family name or a description object"

let parse_spec ?id j =
  match pos_field ?id j "buses" with
  | Error e -> Error e
  | Ok buses -> (
    let buses = Option.value buses ~default:1 in
    if buses > 8 then bad ?id "field \"buses\" must be 1..8"
    else
      match pos_field ?id j "grid_steps" with
      | Error e -> Error e
      | Ok grid_steps -> (
        match parse_machine ?id j with
        | Error e -> Error e
        | Ok machine -> Ok { buses; grid_steps; machine }))

let parse_run ?id ?(frontier = None) ~name ~source j =
  match parse_spec ?id j with
  | Error e -> Error e
  | Ok spec -> (
    match pos_field ?id j "budget" with
    | Error e -> Error e
    | Ok budget -> (
      match nonneg_field ?id j "deadline_ms" with
      | Error e -> Error e
      | Ok deadline_ms ->
        let degrade = Option.value (bool_field j "degrade") ~default:false in
        Ok (Run { name; source; spec; budget; deadline_ms; degrade; frontier })))

let parse line =
  match J.of_string line with
  | Error msg ->
    (* Best effort at salvaging an id for the error response: the line
       did not parse, so there is none. *)
    Error
      ( None,
        Diag.v ~stage:"serve" ~code:"bad-json"
          ~context:[ ("detail", msg) ]
          "request is not a JSON object" )
  | Ok j -> (
    let id = str_field j "id" in
    match j with
    | J.Obj _ -> (
      match id with
      | None | Some "" ->
        Error
          ( None,
            Diag.v ~stage:"serve" ~code:"bad-request"
              "request needs a non-empty string \"id\"" )
      | Some id -> (
        let ret = function
          | Ok req -> Ok { id; req }
          | Error (_, d) -> Error (Some id, d)
        in
        match str_field j "op" with
        | None -> ret (bad ~id "request needs a string \"op\"")
        | Some "ping" -> ret (Ok Ping)
        | Some "stats" -> ret (Ok Stats)
        | Some "shutdown" -> ret (Ok Shutdown)
        | Some "explore" -> (
          match str_field j "bench" with
          | None ->
            ret (bad ~id "op \"explore\" needs a string \"bench\"")
          | Some bench ->
            let seed = Option.value (int_field j "seed") ~default:42 in
            ret
              (match pos_field ~id j "loops" with
              | Error e -> Error e
              | Ok n_loops ->
                parse_run ~id ~name:bench
                  ~source:(Bench { bench; seed; n_loops })
                  j))
        | Some "frontier" -> (
          match str_field j "bench" with
          | None ->
            ret (bad ~id "op \"frontier\" needs a string \"bench\"")
          | Some bench -> (
            (* "objectives"/"caps" ride at the top level of the request
               object; both default as in Frontier.spec. *)
            match Hcv_core.Frontier.spec_of_json j with
            | Error msg -> ret (bad ~id "%s" msg)
            | Ok spec ->
              let seed = Option.value (int_field j "seed") ~default:42 in
              ret
                (match pos_field ~id j "loops" with
                | Error e -> Error e
                | Ok n_loops ->
                  parse_run ~id ~frontier:(Some spec) ~name:bench
                    ~source:(Bench { bench; seed; n_loops })
                    j)))
        | Some "schedule" -> (
          let name = Option.value (str_field j "name") ~default:"adhoc" in
          match (str_field j "dsl", field j "graph") with
          | Some dsl, None -> ret (parse_run ~id ~name ~source:(Dsl dsl) j)
          | None, Some g -> ret (parse_run ~id ~name ~source:(Graph g) j)
          | Some _, Some _ ->
            ret (bad ~id "op \"schedule\" takes \"dsl\" or \"graph\", not both")
          | None, None ->
            ret (bad ~id "op \"schedule\" needs \"dsl\" or \"graph\""))
        | Some op ->
          Error
            ( Some id,
              Diag.v ~stage:"serve" ~code:"unknown-op"
                ~context:[ ("op", op) ]
                (Printf.sprintf "unknown op %S" op) )))
    | _ ->
      Error
        ( None,
          Diag.v ~stage:"serve" ~code:"bad-request"
            "request must be a JSON object" ))

(* ----- rendering --------------------------------------------------- *)

let ok_line ~id ~op ?result () =
  J.to_string
    (J.Obj
       ([ ("id", J.Str id); ("ok", J.Bool true); ("op", J.Str op) ]
       @ match result with None -> [] | Some r -> [ ("result", r) ]))

let diag_json d =
  J.Obj
    [
      ( "stage",
        match Diag.stage d with None -> J.Null | Some s -> J.Str s );
      ("code", J.Str (Diag.code d));
      ("msg", J.Str (Diag.message d));
      ( "context",
        J.List
          (List.filter_map
             (fun (k, v) ->
               match k with
               | "stage" | "code" | "msg" -> None
               | _ -> Some (J.List [ J.Str k; J.Str v ]))
             (Diag.fields d)) );
    ]

let error_line ~id d =
  J.to_string
    (J.Obj
       [
         ("id", match id with None -> J.Null | Some id -> J.Str id);
         ("ok", J.Bool false);
         ("error", diag_json d);
       ])

let oversized_diag n =
  Diag.v ~stage:"serve" ~code:"oversized-line"
    ~context:[ ("bytes", string_of_int n) ]
    "request line exceeds the size limit; payload discarded"

let overloaded_diag ~queue_depth =
  Diag.v ~stage:"serve" ~code:"overloaded"
    ~context:[ ("queue_depth", string_of_int queue_depth) ]
    "request shed: the pending-request queue is full; retry with backoff"

(* ----- client side ------------------------------------------------- *)

type response = {
  rid : string option;
  ok : bool;
  op : string option;
  result : J.t option;
  error : Diag.t option;
}

let diag_of_json j =
  let ctx =
    match Option.bind (J.member "context" j) J.list with
    | None -> []
    | Some kvs ->
      List.filter_map
        (function
          | J.List [ J.Str k; J.Str v ] -> Some (k, v)
          | _ -> None)
        kvs
  in
  Diag.v
    ?stage:(Option.bind (J.member "stage" j) J.str)
    ~code:
      (Option.value ~default:"unknown"
         (Option.bind (J.member "code" j) J.str))
    ~context:ctx
    (Option.value ~default:"" (Option.bind (J.member "msg" j) J.str))

let parse_response line =
  match J.of_string line with
  | Error msg -> Error msg
  | Ok j -> (
    match Option.bind (J.member "ok" j) (function
        | J.Bool b -> Some b
        | _ -> None) with
    | None -> Error "response has no boolean \"ok\""
    | Some ok ->
      Ok
        {
          rid = Option.bind (J.member "id" j) J.str;
          ok;
          op = Option.bind (J.member "op" j) J.str;
          result = J.member "result" j;
          error = Option.map diag_of_json (J.member "error" j);
        })
