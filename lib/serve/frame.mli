(** Incremental line framing for the JSONL wire protocol.

    A frame accumulates bytes as they arrive from a socket and yields
    complete LF-terminated lines (a trailing CR is stripped, so CRLF
    clients work).  A torn line — bytes read before its newline — stays
    buffered across {!feed} calls, which is what makes reads of
    arbitrary sizes safe.

    Oversized lines are the one protocol-level resource bound the
    server enforces before parsing: once a line exceeds [max_line]
    bytes its prefix is discarded and the rest of the line is skipped;
    when its newline finally arrives the frame yields {!Oversized} with
    the total length, so the server can answer with a structured error
    instead of buffering an unbounded payload. *)

type t

type item =
  | Line of string  (** one complete line, newline and trailing CR removed *)
  | Oversized of int
      (** a line longer than [max_line]; the payload was discarded, the
          length is the total number of bytes the line occupied *)

val create : ?max_line:int -> unit -> t
(** [max_line] defaults to 1 MiB. *)

val feed : t -> ?off:int -> ?len:int -> string -> unit
(** Append bytes (a substring of a read buffer). *)

val pop : t -> item option
(** Next complete item, in arrival order; [None] when only a torn line
    (or nothing) remains buffered. *)

val queued : t -> int
(** Number of complete items buffered and not yet popped — the
    server's signal that a round capped by [batch_max] left work
    behind and the next round must poll rather than block. *)

val pending : t -> int
(** Bytes buffered for the current torn line (including the discarded
    count of an oversized line in progress). *)

val drop_partial : t -> int
(** Discard the torn line in progress (complete queued items are kept)
    and return how many bytes were dropped.  The server calls this on
    EOF: a half-closed peer's torn line can never complete, but the
    complete lines it pipelined before closing still deserve their
    answers. *)
