open Hcv_core
module E = Hcv_explore
module J = E.Jsonx
module Diag = Hcv_obs.Diag
open Hcv_workload

type task = {
  work : Proto.work;
  cell : Sweep.cell;
  loops : Hcv_ir.Loop.t list;
  canonical : string;
}

(* Bump on any change to the serve key derivation or the budgeted
   execution path that invalidates persisted outcomes. *)
let serve_salt = "hcv-serve-v1"

let err code ?context fmt =
  Format.kasprintf
    (fun msg -> Error (Diag.v ~stage:"serve" ~code ?context msg))
    fmt

(* ----- JSON DDG payload -> loop-DSL text --------------------------- *)

(* Lowering to the DSL reuses its validation (opcodes, duplicate nodes,
   unknown edge endpoints, DDG well-formedness) instead of duplicating
   it; only token safety has to be checked here, since names become DSL
   tokens. *)

let token_ok s =
  s <> ""
  && String.for_all
       (fun c -> c > ' ' && c <> '#' && Char.code c < 0x7f)
       s

let lower_graph g =
  let ( let* ) = Result.bind in
  let loops = match g with J.List ls -> ls | l -> [ l ] in
  if loops = [] then err "bad-graph" "graph payload has no loops"
  else begin
    let buf = Buffer.create 256 in
    let rec go = function
      | [] -> Ok (Buffer.contents buf)
      | l :: rest ->
        let* () =
          match l with J.Obj _ -> Ok () | _ -> err "bad-graph" "loop must be a JSON object"
        in
        let name =
          Option.value (Option.bind (J.member "name" l) J.str) ~default:"loop"
        in
        let* () =
          if token_ok name then Ok ()
          else err "bad-graph" "bad loop name %S" name
        in
        Buffer.add_string buf ("loop " ^ name);
        Option.iter
          (fun t -> Buffer.add_string buf (Printf.sprintf " trip %d" t))
          (Option.bind (J.member "trip" l) J.int);
        Option.iter
          (fun w -> Buffer.add_string buf (Printf.sprintf " weight %.17g" w))
          (Option.bind (J.member "weight" l) J.num);
        Buffer.add_char buf '\n';
        let* nodes =
          match Option.bind (J.member "nodes" l) J.list with
          | Some ns -> Ok ns
          | None -> err "bad-graph" "loop %s needs a \"nodes\" list" name
        in
        let* () =
          List.fold_left
            (fun acc n ->
              let* () = acc in
              match
                ( Option.bind (J.member "n" n) J.str,
                  Option.bind (J.member "op" n) J.str )
              with
              | Some id, Some op when token_ok id && token_ok op ->
                Buffer.add_string buf
                  (Printf.sprintf "  node %s %s\n" id op);
                Ok ()
              | _ ->
                err "bad-graph" "loop %s: node needs string \"n\" and \"op\""
                  name)
            (Ok ()) nodes
        in
        let edges =
          Option.value (Option.bind (J.member "edges" l) J.list) ~default:[]
        in
        let* () =
          List.fold_left
            (fun acc e ->
              let* () = acc in
              match
                ( Option.bind (J.member "s" e) J.str,
                  Option.bind (J.member "d" e) J.str )
              with
              | Some s, Some d when token_ok s && token_ok d ->
                Buffer.add_string buf (Printf.sprintf "  edge %s %s" s d);
                Option.iter
                  (fun v -> Buffer.add_string buf (Printf.sprintf " dist %d" v))
                  (Option.bind (J.member "dist" e) J.int);
                Option.iter
                  (fun v -> Buffer.add_string buf (Printf.sprintf " lat %d" v))
                  (Option.bind (J.member "lat" e) J.int);
                Option.iter
                  (fun k ->
                    if token_ok k then
                      Buffer.add_string buf (Printf.sprintf " kind %s" k))
                  (Option.bind (J.member "kind" e) J.str);
                Buffer.add_char buf '\n';
                Ok ()
              | _ ->
                err "bad-graph" "loop %s: edge needs string \"s\" and \"d\""
                  name)
            (Ok ()) edges
        in
        Buffer.add_string buf "end\n";
        go rest
    in
    go loops
  end

(* ----- admission --------------------------------------------------- *)

let machine_sel (w : Proto.work) =
  match w.Proto.spec.Proto.machine with
  | Proto.Default -> Sweep.Paper
  | Proto.Family f -> Sweep.Family f
  | Proto.Desc d -> Sweep.Desc d

let cell_of (w : Proto.work) ~bench ~seed ~n_loops =
  (* Threading the frontier spec through the cell makes an unbudgeted
     frontier request key exactly as the CLI's frontier sweep cell —
     warm-cache sharing for free.  The machine selection rides the same
     way: cell keys cover it through the resolved machine's structural
     signature, so default-machine requests keep their historical
     keys. *)
  Sweep.cell ~buses:w.Proto.spec.Proto.buses
    ?grid_steps:w.Proto.spec.Proto.grid_steps ?frontier:w.Proto.frontier
    ~machine:(machine_sel w) ?n_loops ~seed bench

let admit_dsl ~code (w : Proto.work) text =
  match Hcv_ir.Dsl.parse text with
  | Error e ->
    err code
      ~context:[ ("line", string_of_int e.Hcv_ir.Dsl.line) ]
      "payload: %s" e.Hcv_ir.Dsl.msg
  | Ok [] -> err "bad-request" "payload has no loops"
  | Ok loops ->
    Ok
      {
        work = w;
        (* The payload is the workload: seed and loop count play no
           role, the canonical text is what the key covers. *)
        cell = cell_of w ~bench:w.Proto.name ~seed:0 ~n_loops:None;
        loops;
        canonical = Hcv_ir.Dsl.print_all loops;
      }

let admit (w : Proto.work) =
  match w.Proto.source with
  | Proto.Bench { bench; seed; n_loops } -> (
    match Specfp.find bench with
    | None ->
      err "unknown-benchmark"
        ~context:[ ("bench", bench) ]
        "unknown benchmark %S" bench
    | Some _ ->
      Ok
        { work = w; cell = cell_of w ~bench ~seed ~n_loops; loops = []; canonical = "" })
  | Proto.Dsl text -> admit_dsl ~code:"bad-dsl" w text
  | Proto.Graph g -> (
    match lower_graph g with
    | Error d -> Error d
    | Ok text -> admit_dsl ~code:"bad-graph" w text)

(* ----- deadlines --------------------------------------------------- *)

(* A deadline compiles onto the budget machinery: [deadline_ms *
   points_per_ms] work points, intersected with any explicit budget.
   The compile is deterministic (fixed calibration, no clocks), so a
   deadline changes neither the byte-determinism contract nor cache
   validity — it is just another budget. *)
let effective_budget (w : Proto.work) =
  match (w.Proto.budget, w.Proto.deadline_ms) with
  | b, None -> b
  | None, Some d -> Some (Sweep.budget_of_deadline d)
  | Some b, Some d -> Some (min b (Sweep.budget_of_deadline d))

(* The deadline was the binding constraint iff it compiled to a cap no
   looser than the explicit budget (or there was no explicit budget). *)
let deadline_binding (w : Proto.work) =
  match (w.Proto.deadline_ms, w.Proto.budget) with
  | None, _ -> false
  | Some _, None -> true
  | Some d, Some b -> Sweep.budget_of_deadline d <= b

(* ----- content keys ------------------------------------------------ *)

let key t =
  match (t.work.Proto.source, effective_budget t.work) with
  | Proto.Bench _, None ->
    (* Identical inputs to an exploration sweep cell: share its cache
       entries. *)
    Sweep.cell_key t.cell
  | _, budget ->
    E.Codec.digest
      [
        serve_salt;
        Sweep.cell_key t.cell;
        t.canonical;
        (match budget with None -> "-" | Some b -> string_of_int b);
      ]

let codec =
  {
    E.Engine.cell_key = key;
    encode = Sweep.outcome_to_string;
    decode = Sweep.outcome_of_string;
  }

(* ----- execution --------------------------------------------------- *)

let run t =
  let loops_of (c : Sweep.cell) =
    match t.work.Proto.source with
    | Proto.Bench _ ->
      Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
        (Option.get (Specfp.find c.Sweep.bench))
    | Proto.Dsl _ | Proto.Graph _ -> t.loops
  in
  Sweep.run_cell ?budget:(effective_budget t.work) ~loops_of t.cell

(* ----- responses --------------------------------------------------- *)

let result_json (o : Sweep.outcome) =
  J.Obj
    ([
       ("bench", J.Str o.Sweep.bench);
       ("ed2", J.Str (E.Codec.float_to_string o.Sweep.ed2_ratio));
       ("time", J.Str (E.Codec.float_to_string o.Sweep.time_ratio));
       ("energy", J.Str (E.Codec.float_to_string o.Sweep.energy_ratio));
       ("fallbacks", J.Num (float_of_int o.Sweep.fallbacks));
     ]
    @ (match o.Sweep.causes with
      | [] -> []
      | cs -> [ ("causes", J.List (List.map (fun c -> J.Str c) cs)) ])
    @ [
        ( "hetero",
          match J.of_string o.Sweep.hetero with
          | Ok j -> j
          | Error _ -> J.Str o.Sweep.hetero );
      ]
    @
    match o.Sweep.frontier with
    | [] -> []
    | ms ->
      [
        ( "frontier",
          J.List
            (List.map
               (fun m ->
                 match J.of_string m with Ok j -> j | Error _ -> J.Str m)
               ms) );
      ])

let response_line ~id (w : Proto.work) = function
  | Error d -> Proto.error_line ~id:(Some id) d
  | Ok (o : Sweep.outcome) -> (
    match o.Sweep.error with
    | Some msg ->
      Proto.error_line ~id:(Some id)
        (Diag.v ~stage:"serve" ~code:"pipeline-failed"
           ~context:[ ("bench", o.Sweep.bench) ]
           msg)
    | None ->
      if
        effective_budget w <> None
        && (not w.Proto.degrade)
        && List.mem "budget-exhausted" o.Sweep.causes
      then
        if deadline_binding w then
          Proto.error_line ~id:(Some id)
            (Diag.v ~stage:"serve" ~code:"deadline-exceeded"
               ~context:
                 [
                   ("bench", o.Sweep.bench);
                   ( "deadline_ms",
                     match w.Proto.deadline_ms with
                     | Some d -> string_of_int d
                     | None -> "-" );
                   ("fallbacks", string_of_int o.Sweep.fallbacks);
                 ]
               "the deadline bounds less scheduling work than the workload \
                needs (pass \"degrade\":true to accept the \
                estimate-fallback result)")
        else
          Proto.error_line ~id:(Some id)
            (Diag.v ~stage:"serve" ~code:"budget-exhausted"
               ~context:
                 [
                   ("bench", o.Sweep.bench);
                   ( "budget",
                     match w.Proto.budget with
                     | Some b -> string_of_int b
                     | None -> "-" );
                   ("fallbacks", string_of_int o.Sweep.fallbacks);
                 ]
               "scheduling exhausted the request's work budget (pass \
                \"degrade\":true to accept the estimate-fallback result)")
      else
        Proto.ok_line ~id ~op:(Proto.op_name (Proto.Run w))
          ~result:(result_json o) ())
