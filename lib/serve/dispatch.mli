(** The batched dispatcher: every request path of the daemon funnels
    through one of these, wrapping one shared {!Hcv_explore.Engine}
    (worker pool + persistent result cache + retry supervision).

    {!handle} answers a batch of parsed requests: control ops inline,
    run ops admitted through the {!Registry}, deduplicated by content
    key (concurrent identical requests are computed once), and
    dispatched to the engine as a single supervised sweep — so a batch
    inherits the engine's whole contract: parallel across the pool,
    memoised in the shared warm cache, failures quarantined per
    request.  One malformed, failing or budget-exhausted request turns
    into one error line; it never affects another request or the
    daemon.

    Determinism: the response line of a run request depends only on the
    request's content — not on the batch it arrived in, the worker
    count, or the cache state — which is what lets a load generator
    byte-compare concurrent warm runs against a sequential cold one. *)

type t

val create : Hcv_explore.Engine.t -> t
(** Wrap an existing engine (pool, cache, retry policy, progress).  The
    caller owns the engine's lifecycle; {!shutdown} delegates to it. *)

val jobs : t -> int

val handle :
  t -> ?obs:Hcv_obs.Trace.span -> Proto.envelope list -> string list
(** One response line (no trailing newline) per envelope, in order.
    With [?obs], deterministic ["serve.requests"] / ["serve.errors"] /
    ["serve.unique_cells"] counters are recorded under a
    ["batch"] span. *)

val handle_line : t -> ?obs:Hcv_obs.Trace.span -> string -> string
(** Parse one raw request line and answer it ({!Proto.parse} errors
    included) — the single-request path used by benches and tests. *)

val served : t -> int
(** Requests answered so far (errors included). *)

val errors : t -> int

val stats_json : t -> Hcv_explore.Jsonx.t
(** The ["stats"] op's result object: served/error counters, worker
    count, cache statistics.  Volatile by nature. *)

val shutdown : t -> unit
(** Join the engine's workers and close the cache.  Idempotent. *)
