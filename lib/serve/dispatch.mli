(** The batched dispatcher: every request path of the daemon funnels
    through one of these, wrapping one shared {!Hcv_explore.Engine}
    (worker pool + persistent result cache + retry supervision).

    {!handle} answers a batch of parsed requests: control ops inline,
    run ops admitted through the {!Registry}, deduplicated by content
    key (concurrent identical requests are computed once), and
    dispatched to the engine as a single supervised sweep — so a batch
    inherits the engine's whole contract: parallel across the pool,
    memoised in the shared warm cache, failures quarantined per
    request.  One malformed, failing or budget-exhausted request turns
    into one error line; it never affects another request or the
    daemon.

    {2 Overload semantics}

    A request whose deadline (explicit ["deadline_ms"], or the
    [?default_deadline_ms] the dispatcher fills in) bounds less work
    than the workload needs is answered [deadline-exceeded] — or, with
    ["degrade":true], with the estimate-fallback result.  A content key
    the engine's supervisor quarantined trips a {e circuit breaker}:
    until restart, identical requests fast-fail with [circuit-open]
    (context: the key and the original code) instead of re-executing a
    known-bad cell.  Only genuine quarantines ([task-failed] /
    [injected-fault]) open circuits — budget/deadline exhaustion and
    pipeline failures never do, so a fault-free daemon never trips one.

    Determinism: the response line of a run request depends only on the
    request's content — not on the batch it arrived in, the worker
    count, or the cache state — which is what lets a load generator
    byte-compare concurrent warm runs against a sequential cold one.
    (The one carve-out is [circuit-open], which by design remembers a
    quarantine; fault-free runs never produce one.) *)

type t

val create : ?default_deadline_ms:int -> Hcv_explore.Engine.t -> t
(** Wrap an existing engine (pool, cache, retry policy, progress).  The
    caller owns the engine's lifecycle; {!shutdown} delegates to it.
    [?default_deadline_ms] is compiled onto every run request that does
    not carry its own ["deadline_ms"] (default: none). *)

val jobs : t -> int

val handle :
  t -> ?obs:Hcv_obs.Trace.span -> Proto.envelope list -> string list
(** One response line (no trailing newline) per envelope, in order.
    With [?obs], deterministic ["serve.requests"] / ["serve.errors"] /
    ["serve.unique_cells"] counters are recorded under a ["batch"]
    span; overload tallies (e.g. ["serve.deadline_exceeded"]) are
    volatile gauges, so the deterministic trace view stays byte-stable
    under chaos. *)

val handle_line : t -> ?obs:Hcv_obs.Trace.span -> string -> string
(** Parse one raw request line and answer it ({!Proto.parse} errors
    included) — the single-request path used by benches and tests. *)

val served : t -> int
(** Requests answered so far (errors included; shed requests are
    answered by the server before reaching the dispatcher and are NOT
    counted here — see {!shed}). *)

val errors : t -> int

val shed : t -> int
(** Requests the server shed with [overloaded] ({!note_shed}). *)

val drained : t -> int
(** Requests answered during graceful drain ({!note_drained}). *)

val breaker_open : t -> int
(** Content keys currently fast-failing with [circuit-open]. *)

val note_shed : t -> unit
(** The server records each load-shed request here (the shed response
    itself is rendered at the socket layer, bypassing {!handle}). *)

val note_drained : t -> unit

val set_gauges : t -> (unit -> (string * float) list) -> unit
(** Register the server's live gauges (queue depth, in-flight count…);
    they are embedded in the stats op's ["volatile"] object.  Default:
    none. *)

val stats_json : t -> Hcv_explore.Jsonx.t
(** The ["stats"] op's result object: served/error counters, worker
    count, cache statistics, plus a nested ["volatile"] object
    (uptime, registered gauges, shed/deadline/drain tallies, open
    circuits) that two runs legitimately disagree on. *)

val shutdown : t -> unit
(** Join the engine's workers and close the cache.  Idempotent. *)
