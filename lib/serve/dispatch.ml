module E = Hcv_explore
module J = E.Jsonx
module Diag = Hcv_obs.Diag

type t = {
  engine : E.Engine.t;
  default_deadline_ms : int option;
  mutable served : int;
  mutable errors : int;
  mutable shed : int;
  mutable deadline_exceeded : int;
  mutable drained : int;
  (* Quarantined content keys: a key whose sweep cell the retry
     supervisor gave up on fast-fails here until restart, instead of
     burning the pool re-quarantining it on every identical request.
     Only engine quarantines land in it (never pipeline or budget
     outcomes), so a fault-free daemon never opens a circuit and the
     byte-determinism contract for clean requests is untouched. *)
  breaker : (string, Diag.t) Hashtbl.t;
  mutable gauges : unit -> (string * float) list;
  started_at : float;
}

let create ?default_deadline_ms engine =
  {
    engine;
    default_deadline_ms;
    served = 0;
    errors = 0;
    shed = 0;
    deadline_exceeded = 0;
    drained = 0;
    breaker = Hashtbl.create 16;
    gauges = (fun () -> []);
    started_at = Unix.gettimeofday ();
  }

let jobs t = E.Engine.jobs t.engine

let served t = t.served
let errors t = t.errors
let shed t = t.shed
let drained t = t.drained
let breaker_open t = Hashtbl.length t.breaker

let note_shed t = t.shed <- t.shed + 1
let note_drained t = t.drained <- t.drained + 1
let set_gauges t f = t.gauges <- f

(* Fill in the server-side deadline default before admission, so the
   registry compiles and renders the work the daemon actually ran. *)
let with_default_deadline t (w : Proto.work) =
  match (w.Proto.deadline_ms, t.default_deadline_ms) with
  | None, Some d -> { w with Proto.deadline_ms = Some d }
  | _ -> w

let circuit_open_diag ~key d =
  Diag.v ~stage:"serve" ~code:"circuit-open"
    ~context:[ ("key", key); ("cause", Diag.code d) ]
    "circuit open: an identical request was quarantined this run; \
     fast-failing instead of re-executing it"

let volatile_json t =
  J.Obj
    ([ ("uptime_s", J.Num (Unix.gettimeofday () -. t.started_at)) ]
    @ List.map (fun (k, v) -> (k, J.Num v)) (t.gauges ())
    @ [
        ("shed", J.Num (float_of_int t.shed));
        ("deadline_exceeded", J.Num (float_of_int t.deadline_exceeded));
        ("drained", J.Num (float_of_int t.drained));
        ("breaker_open", J.Num (float_of_int (Hashtbl.length t.breaker)));
      ])

let stats_json t =
  let cache =
    match E.Engine.cache t.engine with
    | None -> J.Null
    | Some c ->
      let s = E.Cache.stats c in
      J.Obj
        [
          ("hits", J.Num (float_of_int s.E.Cache.hits));
          ("misses", J.Num (float_of_int s.E.Cache.misses));
          ("entries", J.Num (float_of_int s.E.Cache.entries));
        ]
  in
  J.Obj
    [
      ("served", J.Num (float_of_int t.served));
      ("errors", J.Num (float_of_int t.errors));
      ("jobs", J.Num (float_of_int (jobs t)));
      ("cache", cache);
      ("volatile", volatile_json t);
    ]

(* One slot per envelope: either an already-rendered control response,
   or an admitted run task waiting for its sweep result. *)
type slot =
  | Done of string
  | Pending of { id : string; work : Proto.work; key : string }

(* Responses are rendered by this module, so they always re-parse. *)
let error_code line =
  match Proto.parse_response line with
  | Ok { Proto.ok = true; _ } -> None
  | Ok { Proto.error = Some d; _ } -> Some (Diag.code d)
  | Ok { Proto.error = None; _ } | Error _ -> Some "unparseable"

(* Codes the engine's supervisor quarantines a cell with (as opposed to
   a pipeline completing with a failure outcome). *)
let quarantine_code = function
  | "task-failed" | "injected-fault" -> true
  | _ -> false

let handle t ?(obs = Hcv_obs.Trace.null) envelopes =
  Hcv_obs.Trace.span obs "batch" (fun sp ->
      let tasks = Hashtbl.create 16 in
      (* first-occurrence submission order, for the engine fan-out *)
      let order = ref [] in
      let slots =
        List.map
          (fun { Proto.id; req } ->
            match req with
            | Proto.Ping -> Done (Proto.ok_line ~id ~op:"ping" ())
            | Proto.Shutdown -> Done (Proto.ok_line ~id ~op:"shutdown" ())
            | Proto.Stats ->
              Done (Proto.ok_line ~id ~op:"stats" ~result:(stats_json t) ())
            | Proto.Run work -> (
              let work = with_default_deadline t work in
              match Registry.admit work with
              | Error d -> Done (Proto.error_line ~id:(Some id) d)
              | Ok task -> (
                let key = Registry.key task in
                match Hashtbl.find_opt t.breaker key with
                | Some d ->
                  Done (Proto.error_line ~id:(Some id) (circuit_open_diag ~key d))
                | None ->
                  if not (Hashtbl.mem tasks key) then begin
                    Hashtbl.replace tasks key task;
                    order := key :: !order
                  end;
                  Pending { id; work; key })))
          envelopes
      in
      let unique = List.rev_map (Hashtbl.find tasks) !order in
      let results = Hashtbl.create 16 in
      if unique <> [] then
        List.iter2
          (fun task r ->
            let key = Registry.key task in
            (match r with
            | Error d when quarantine_code (Diag.code d) ->
              Hashtbl.replace t.breaker key d
            | Error _ | Ok _ -> ());
            Hashtbl.replace results key r)
          unique
          (E.Engine.sweep t.engine ~label:"serve" ~obs:sp
             ~codec:Registry.codec Registry.run unique);
      let lines =
        List.map
          (function
            | Done line -> line
            | Pending { id; work; key } ->
              Registry.response_line ~id work (Hashtbl.find results key))
          slots
      in
      let errs = List.length (List.filter_map error_code lines) in
      let deadlines =
        List.length
          (List.filter
             (fun l -> error_code l = Some "deadline-exceeded")
             lines)
      in
      t.served <- t.served + List.length lines;
      t.errors <- t.errors + errs;
      t.deadline_exceeded <- t.deadline_exceeded + deadlines;
      Hcv_obs.Trace.add sp "serve.requests" (List.length lines);
      Hcv_obs.Trace.add sp "serve.errors" errs;
      Hcv_obs.Trace.add sp "serve.unique_cells" (List.length unique);
      (* Overload tallies are run-dependent under chaos (how many
         requests a slow client got shed, which retries hit a deadline),
         so they ride the volatile side of the trace: the deterministic
         view stays byte-stable across adversarial runs. *)
      if deadlines > 0 then
        Hcv_obs.Trace.vol sp "serve.deadline_exceeded" (float_of_int deadlines);
      lines)

let handle_line t ?obs line =
  match Proto.parse line with
  | Error (id, d) ->
    t.served <- t.served + 1;
    t.errors <- t.errors + 1;
    Proto.error_line ~id d
  | Ok envelope -> (
    match handle t ?obs [ envelope ] with
    | [ l ] -> l
    | _ -> assert false)

let shutdown t = E.Engine.shutdown t.engine
