module E = Hcv_explore
module J = E.Jsonx

type t = {
  engine : E.Engine.t;
  mutable served : int;
  mutable errors : int;
}

let create engine = { engine; served = 0; errors = 0 }

let jobs t = E.Engine.jobs t.engine

let served t = t.served
let errors t = t.errors

let stats_json t =
  let cache =
    match E.Engine.cache t.engine with
    | None -> J.Null
    | Some c ->
      let s = E.Cache.stats c in
      J.Obj
        [
          ("hits", J.Num (float_of_int s.E.Cache.hits));
          ("misses", J.Num (float_of_int s.E.Cache.misses));
          ("entries", J.Num (float_of_int s.E.Cache.entries));
        ]
  in
  J.Obj
    [
      ("served", J.Num (float_of_int t.served));
      ("errors", J.Num (float_of_int t.errors));
      ("jobs", J.Num (float_of_int (jobs t)));
      ("cache", cache);
    ]

(* One slot per envelope: either an already-rendered control response,
   or an admitted run task waiting for its sweep result. *)
type slot =
  | Done of string
  | Pending of { id : string; work : Proto.work; key : string }

(* Responses are rendered by this module, so they always re-parse. *)
let is_error line =
  match Proto.parse_response line with
  | Ok r -> not r.Proto.ok
  | Error _ -> true

let handle t ?(obs = Hcv_obs.Trace.null) envelopes =
  Hcv_obs.Trace.span obs "batch" (fun sp ->
      let tasks = Hashtbl.create 16 in
      (* first-occurrence submission order, for the engine fan-out *)
      let order = ref [] in
      let slots =
        List.map
          (fun { Proto.id; req } ->
            match req with
            | Proto.Ping -> Done (Proto.ok_line ~id ~op:"ping" ())
            | Proto.Shutdown -> Done (Proto.ok_line ~id ~op:"shutdown" ())
            | Proto.Stats ->
              Done (Proto.ok_line ~id ~op:"stats" ~result:(stats_json t) ())
            | Proto.Run work -> (
              match Registry.admit work with
              | Error d -> Done (Proto.error_line ~id:(Some id) d)
              | Ok task ->
                let key = Registry.key task in
                if not (Hashtbl.mem tasks key) then begin
                  Hashtbl.replace tasks key task;
                  order := key :: !order
                end;
                Pending { id; work; key }))
          envelopes
      in
      let unique = List.rev_map (Hashtbl.find tasks) !order in
      let results = Hashtbl.create 16 in
      if unique <> [] then
        List.iter2
          (fun task r -> Hashtbl.replace results (Registry.key task) r)
          unique
          (E.Engine.sweep t.engine ~label:"serve" ~obs:sp
             ~codec:Registry.codec Registry.run unique);
      let lines =
        List.map
          (function
            | Done line -> line
            | Pending { id; work; key } ->
              Registry.response_line ~id work (Hashtbl.find results key))
          slots
      in
      let errs = List.length (List.filter is_error lines) in
      t.served <- t.served + List.length lines;
      t.errors <- t.errors + errs;
      Hcv_obs.Trace.add sp "serve.requests" (List.length lines);
      Hcv_obs.Trace.add sp "serve.errors" errs;
      Hcv_obs.Trace.add sp "serve.unique_cells" (List.length unique);
      lines)

let handle_line t ?obs line =
  match Proto.parse line with
  | Error (id, d) ->
    t.served <- t.served + 1;
    t.errors <- t.errors + 1;
    Proto.error_line ~id d
  | Ok envelope -> (
    match handle t ?obs [ envelope ] with
    | [ l ] -> l
    | _ -> assert false)

let shutdown t = E.Engine.shutdown t.engine
