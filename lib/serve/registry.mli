(** The request registry: semantic validation and content addressing.

    {!Proto.parse} checks only the JSON shape of a request; {!admit}
    turns the parsed work description into an executable {!task} —
    resolving the benchmark against the workload suite, parsing a
    loop-DSL payload, lowering a JSON DDG payload — or rejects it with
    a structured diagnostic ([unknown-benchmark], [bad-dsl],
    [bad-graph], [bad-request]).

    Every admitted task has a content {!key} covering each input that
    can affect its result (machine shape, parameters, workload
    identity or payload text, budget), which is what the dispatcher
    batches and memoises on:

    - an [explore] task without a budget keys {e exactly} like the
      corresponding {!Hcv_core.Sweep} cell, so the daemon's persistent
      cache is shared with [hcvliw explore]/[fig7] sweeps — a warm
      exploration cache serves requests without scheduling anything;
    - payload-carrying or budgeted tasks key under a serve-specific
      salt (the budget bounds the work, so it changes the result). *)

open Hcv_core

type task = {
  work : Proto.work;
  cell : Sweep.cell;
      (** machine/params binding; for payload sources the cell's
          benchmark name is just the request's label *)
  loops : Hcv_ir.Loop.t list;  (** resolved payload; [[]] for [Bench] *)
  canonical : string;
      (** canonical DSL rendering of a payload (keys must not depend on
          payload formatting); [""] for [Bench] *)
}

val admit : Proto.work -> (task, Hcv_obs.Diag.t) result

val effective_budget : Proto.work -> int option
(** The work cap the task actually runs under: the explicit ["budget"]
    intersected with the deadline compiled through
    {!Hcv_core.Sweep.budget_of_deadline}.  Deterministic (fixed
    calibration, no clocks), so deadlines neither perturb response
    bytes nor invalidate cached outcomes — a deadline is just another
    budget.  [None] only when the request carries neither field. *)

val key : task -> string

val codec : (task, Sweep.outcome) Hcv_explore.Engine.codec
(** {!key} + the {!Sweep.outcome} serialisation (cache interop with the
    exploration sweeps). *)

val run : task -> Sweep.outcome
(** One supervised {!Sweep.run_cell} with the task's
    {!effective_budget}. *)

val response_line :
  id:string -> Proto.work -> (Sweep.outcome, Hcv_obs.Diag.t) result -> string
(** Render the response for an executed (or quarantined) task:
    - engine quarantine or pipeline failure: an error line
      ([task-failed] / [injected-fault] / [pipeline-failed]);
    - effective budget exhausted and the request did not opt into
      degraded results: a [deadline-exceeded] error line when the
      deadline was the binding constraint (it compiled to a cap no
      looser than any explicit budget), else [budget-exhausted] —
      both name the fallback count;
    - otherwise: the ok line with the result object (exact ["%h"]
      float forms, fallback causes included when present). *)
