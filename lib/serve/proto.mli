(** The JSONL wire protocol of the scheduling service.

    One JSON object per line in both directions, parsed and printed
    with {!Hcv_explore.Jsonx} — no new dependencies, and the exact
    float forms the sweep cache already uses.

    {2 Requests}

    Every request carries a client-chosen ["id"] (any non-empty string,
    echoed verbatim in the response) and an ["op"]:

    - [{"id":..,"op":"ping"}] — liveness probe;
    - [{"id":..,"op":"stats"}] — daemon counters and cache statistics
      (volatile: two runs legitimately differ);
    - [{"id":..,"op":"shutdown"}] — acknowledge, flush, and stop;
    - [{"id":..,"op":"explore","bench":NAME,...}] — run the full
      profile/select/schedule pipeline for a synthetic SPECfp
      benchmark;
    - [{"id":..,"op":"schedule","dsl":TEXT,...}] or
      [{"id":..,"op":"schedule","graph":G,...}] — the same pipeline
      over a client-supplied workload: either loop-DSL text
      ({!Hcv_ir.Dsl}) or a JSON DDG payload (see {!section-graph});
    - [{"id":..,"op":"frontier","bench":NAME,...}] — [explore] plus the
      optional frontier stage: takes every [explore] option and,
      additionally, ["objectives"] (list of
      [time]/[energy]/[ed2]/[edp]/[power]; default all) and ["caps"]
      ([[NAME, BOUND],...]; default none) in
      {!Hcv_core.Frontier.spec_of_json} form; the result gains the
      frontier members.  An unbudgeted [frontier] request keys exactly
      as the CLI's frontier sweep cell, so the daemon shares its warm
      cache.

    [explore] options: ["seed"] (default 42), ["loops"] (loop count,
    default per-spec).  Both run ops take the machine overrides
    ["buses"] (default 1), ["grid_steps"] (frequency-grid steps,
    default unrestricted) and ["machine"] (a machine-family name such
    as ["big-little"], or an inline machine-description object in
    {!Hcv_explore.Machdesc} form; default the paper machine), a work
    cap ["budget"] (default unlimited), a latency bound ["deadline_ms"]
    (non-negative; default the server's, if any) and ["degrade"]
    (boolean, default [false]).  With a budget and
    [degrade:false], a request whose scheduling work exhausts the cap
    is answered with a structured [budget-exhausted] error; with
    [degrade:true] the response is the degraded (estimate-fallback)
    result, causes included.  ["deadline_ms"] compiles onto the same
    budget machinery (see {!Registry.effective_budget}): a request
    whose deadline-derived work cap is exhausted answers
    [deadline-exceeded] — or, with [degrade:true], the degraded
    result — and ["deadline_ms":0] is the fast-fail probe that answers
    immediately with whatever the estimate path can produce.

    {2:graph DDG payloads}

    ["graph"] is one loop object or a list of them:
    [{"name":..,"trip":..,"weight":..,
      "nodes":[{"n":ID,"op":MNEMONIC},...],
      "edges":[{"s":ID,"d":ID,"dist":N,"lat":N,"kind":K},...]}]
    with ["dist"]/["lat"]/["kind"] optional, exactly the DSL's
    defaults.

    {2 Responses}

    [{"id":..,"ok":true,"op":..}] (plus ["result"] for ops that return
    one), or [{"id":..,"ok":false,"error":{"stage":..,"code":..,
    "msg":..,"context":[[k,v],...]}}] — a {!Hcv_obs.Diag.t} on the
    wire.  ["id"] is [null] when the request line carried no usable id
    (unparseable JSON, oversized line).  Response bytes for run ops are
    deterministic: they depend only on the request content, never on
    the worker count, the batch composition or the cache state. *)

(** The optional ["machine"] request field: absent ([Default] — the
    paper machine), a {!Hcv_machine.Family} name (validated against the
    known families), or an inline {!Hcv_explore.Machdesc} JSON object
    ([Desc] holds its canonical re-serialisation, so equal machines key
    equally whatever the client's formatting). *)
type machine_choice =
  | Default
  | Family of string
  | Desc of string

type machine_spec = {
  buses : int;
  grid_steps : int option;
  machine : machine_choice;
}

type source =
  | Bench of { bench : string; seed : int; n_loops : int option }
  | Dsl of string  (** raw loop-DSL text; validated by the registry *)
  | Graph of Hcv_explore.Jsonx.t
      (** DDG JSON payload; validated by the registry *)

type work = {
  name : string;  (** label echoed in the result (benchmark or payload name) *)
  source : source;
  spec : machine_spec;
  budget : int option;
  deadline_ms : int option;
      (** the ["deadline_ms"] wire field (>= 0): compiled by the
          registry onto the budget machinery
          ({!Registry.effective_budget}); [0] is the fast-fail probe.
          The dispatcher may fill in a server-side default. *)
  degrade : bool;
  frontier : Hcv_core.Frontier.spec option;
      (** present on ["frontier"] requests: the pipeline also runs the
          optional frontier stage and the result carries the members *)
}

type request = Ping | Stats | Shutdown | Run of work

type envelope = { id : string; req : request }

val op_name : request -> string
(** ["ping"], ["stats"], ["shutdown"], ["explore"], ["schedule"] or
    ["frontier"]. *)

val parse : string -> (envelope, string option * Hcv_obs.Diag.t) result
(** Parse one request line.  On error the [string option] is the
    request id when one could still be extracted (so the error response
    can echo it); diagnostic codes: [bad-json], [bad-request],
    [unknown-op], stage ["serve"]. *)

val ok_line : id:string -> op:string -> ?result:Hcv_explore.Jsonx.t
  -> unit -> string
(** Render a success response line (no trailing newline). *)

val error_line : id:string option -> Hcv_obs.Diag.t -> string

val oversized_diag : int -> Hcv_obs.Diag.t
(** The [oversized-line] diagnostic for a {!Frame.Oversized} item. *)

val overloaded_diag : queue_depth:int -> Hcv_obs.Diag.t
(** The [overloaded] diagnostic a shed request is answered with,
    carrying the pending-queue depth that triggered the shed. *)

(** {2 Client side} *)

type response = {
  rid : string option;  (** [None] when the server answered ["id":null] *)
  ok : bool;
  op : string option;
  result : Hcv_explore.Jsonx.t option;
  error : Hcv_obs.Diag.t option;
}

val parse_response : string -> (response, string) result
