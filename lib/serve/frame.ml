type item = Line of string | Oversized of int

type t = {
  max_line : int;
  buf : Buffer.t;  (** the torn line in progress *)
  q : item Queue.t;
  mutable discarding : int;
      (** > 0: the current line blew [max_line]; counts every byte seen
          so far while we skip to its newline *)
}

let create ?(max_line = 1 lsl 20) () =
  { max_line; buf = Buffer.create 256; q = Queue.create (); discarding = 0 }

let feed t ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Frame.feed";
  for i = off to off + len - 1 do
    let c = s.[i] in
    if t.discarding > 0 then
      if c = '\n' then begin
        Queue.push (Oversized t.discarding) t.q;
        t.discarding <- 0
      end
      else t.discarding <- t.discarding + 1
    else if c = '\n' then begin
      let line = Buffer.contents t.buf in
      Buffer.clear t.buf;
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
        else line
      in
      Queue.push (Line line) t.q
    end
    else begin
      Buffer.add_char t.buf c;
      if Buffer.length t.buf > t.max_line then begin
        t.discarding <- Buffer.length t.buf;
        Buffer.clear t.buf
      end
    end
  done

let pop t = Queue.take_opt t.q
let queued t = Queue.length t.q

let pending t = Buffer.length t.buf + t.discarding

let drop_partial t =
  let n = pending t in
  Buffer.clear t.buf;
  t.discarding <- 0;
  n
