open Hcv_support
open Hcv_workload
module J = Hcv_explore.Jsonx

type mix = Clean | Full

(* Small loop-DSL payloads in the style of the synthetic SPECfp bodies:
   a streaming kernel, a stored kernel and a recurrence-bound one. *)
let dsl_corpus trip =
  [
    Printf.sprintf
      "loop dotprod trip %d weight 0.5\n\
      \  node a ld.f\n\
      \  node b ld.f\n\
      \  node c mul.f\n\
      \  node d add.f\n\
      \  edge a c\n\
      \  edge b c\n\
      \  edge c d\n\
      \  edge d d dist 1\n\
       end\n"
      trip;
    Printf.sprintf
      "loop daxpy trip %d\n\
      \  node x ld.f\n\
      \  node y ld.f\n\
      \  node m mul.f\n\
      \  node s add.f\n\
      \  node w st.f\n\
      \  edge x m\n\
      \  edge m s\n\
      \  edge y s\n\
      \  edge s w\n\
       end\n"
      trip;
    Printf.sprintf
      "loop recur trip %d weight 0.25\n\
      \  node l ld.f\n\
      \  node m mul.f\n\
      \  node a add.f\n\
      \  edge l m\n\
      \  edge m a\n\
      \  edge a m dist 1 lat 6\n\
       end\n"
      trip;
  ]

let graph_payload trip =
  J.Obj
    [
      ("name", J.Str "jsum");
      ("trip", J.Num (float_of_int trip));
      ( "nodes",
        J.List
          [
            J.Obj [ ("n", J.Str "a"); ("op", J.Str "ld.f") ];
            J.Obj [ ("n", J.Str "b"); ("op", J.Str "mul.f") ];
            J.Obj [ ("n", J.Str "c"); ("op", J.Str "add.f") ];
          ] );
      ( "edges",
        J.List
          [
            J.Obj [ ("s", J.Str "a"); ("d", J.Str "b") ];
            J.Obj [ ("s", J.Str "b"); ("d", J.Str "c") ];
            J.Obj
              [ ("s", J.Str "c"); ("d", J.Str "c"); ("dist", J.Num 1.0) ];
          ] );
    ]

(* Lines that must each come back as one structured error (the %s takes
   the request id where one fits). *)
let malformed id =
  [
    "this is not json";
    "{\"id\":";
    "{\"op\":\"explore\",\"bench\":\"applu\"}";
    Printf.sprintf "{\"id\":%S,\"op\":\"frobnicate\"}" id;
    Printf.sprintf "{\"id\":%S,\"op\":\"explore\"}" id;
    Printf.sprintf "{\"id\":%S,\"op\":\"explore\",\"bench\":\"nosuchbench\"}" id;
    Printf.sprintf
      "{\"id\":%S,\"op\":\"schedule\",\"dsl\":\"loop x\\nend\\n\"}" id;
  ]

let requests ?(mix = Full) ?(n_loops = 2) ~seed n =
  let rng = Rng.create seed in
  let benches = List.map (fun s -> s.Specfp.name) Specfp.all in
  let obj fields = J.to_string (J.Obj fields) in
  let machine_fields rng =
    [ ("buses", J.Num (float_of_int (Rng.pick rng [ 1; 2 ]))) ]
    @
    match Rng.pick rng [ None; Some 16; Some 8; Some 4 ] with
    | None -> []
    | Some s -> [ ("grid_steps", J.Num (float_of_int s)) ]
  in
  let explore ?budget ?degrade id =
    obj
      ([
         ("id", J.Str id);
         ("op", J.Str "explore");
         ("bench", J.Str (Rng.pick rng benches));
         ("loops", J.Num (float_of_int n_loops));
       ]
      @ machine_fields rng
      @ (match budget with
        | None -> []
        | Some b -> [ ("budget", J.Num (float_of_int b)) ])
      @
      match degrade with
      | None -> []
      | Some d -> [ ("degrade", J.Bool d) ])
  in
  let schedule id =
    let trip = Rng.pick rng [ 64; 128; 256 ] in
    if Rng.chance rng 0.4 then
      obj
        ([
           ("id", J.Str id);
           ("op", J.Str "schedule");
           ("graph", graph_payload trip);
         ]
        @ machine_fields rng)
    else
      obj
        ([
           ("id", J.Str id);
           ("op", J.Str "schedule");
           ("dsl", J.Str (Rng.pick rng (dsl_corpus trip)));
         ]
        @ machine_fields rng)
  in
  let line i =
    let id = Printf.sprintf "r%06d" i in
    match mix with
    | Clean ->
      if Rng.chance rng 0.75 then explore id else schedule id
    | Full ->
      let roll = Rng.int rng 100 in
      if roll < 60 then explore id
      else if roll < 80 then schedule id
      else if roll < 88 then
        (* A work cap the scheduler cannot fit in: a structured
           budget-exhausted error, or the degraded estimate when the
           client opts in. *)
        explore ~budget:1 ~degrade:(Rng.chance rng 0.3) id
      else Rng.pick rng (malformed id)
  in
  let rec go acc i = if i >= n then List.rev acc else go (line i :: acc) (i + 1) in
  go [] 0

let percentile xs p =
  match List.sort compare xs with
  | [] -> Float.nan
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let summary_json ~requests ~concurrency ~wall_ns ~ok ~errors ~latencies_ns =
  let rps =
    if wall_ns > 0.0 then float_of_int requests /. (wall_ns /. 1e9) else 0.0
  in
  J.Obj
    [
      ("schema", J.Str "hcvliw-serve-load-v1");
      ("requests", J.Num (float_of_int requests));
      ("concurrency", J.Num (float_of_int concurrency));
      ("wall_ns", J.Num wall_ns);
      ("rps", J.Num rps);
      ("ok", J.Num (float_of_int ok));
      ("errors", J.Num (float_of_int errors));
      ("p50_ns", J.Num (percentile latencies_ns 0.50));
      ("p99_ns", J.Num (percentile latencies_ns 0.99));
    ]
