open Hcv_support
open Hcv_workload
module J = Hcv_explore.Jsonx

type mix = Clean | Full

(* Small loop-DSL payloads in the style of the synthetic SPECfp bodies:
   a streaming kernel, a stored kernel and a recurrence-bound one. *)
let dsl_corpus trip =
  [
    Printf.sprintf
      "loop dotprod trip %d weight 0.5\n\
      \  node a ld.f\n\
      \  node b ld.f\n\
      \  node c mul.f\n\
      \  node d add.f\n\
      \  edge a c\n\
      \  edge b c\n\
      \  edge c d\n\
      \  edge d d dist 1\n\
       end\n"
      trip;
    Printf.sprintf
      "loop daxpy trip %d\n\
      \  node x ld.f\n\
      \  node y ld.f\n\
      \  node m mul.f\n\
      \  node s add.f\n\
      \  node w st.f\n\
      \  edge x m\n\
      \  edge m s\n\
      \  edge y s\n\
      \  edge s w\n\
       end\n"
      trip;
    Printf.sprintf
      "loop recur trip %d weight 0.25\n\
      \  node l ld.f\n\
      \  node m mul.f\n\
      \  node a add.f\n\
      \  edge l m\n\
      \  edge m a\n\
      \  edge a m dist 1 lat 6\n\
       end\n"
      trip;
  ]

let graph_payload trip =
  J.Obj
    [
      ("name", J.Str "jsum");
      ("trip", J.Num (float_of_int trip));
      ( "nodes",
        J.List
          [
            J.Obj [ ("n", J.Str "a"); ("op", J.Str "ld.f") ];
            J.Obj [ ("n", J.Str "b"); ("op", J.Str "mul.f") ];
            J.Obj [ ("n", J.Str "c"); ("op", J.Str "add.f") ];
          ] );
      ( "edges",
        J.List
          [
            J.Obj [ ("s", J.Str "a"); ("d", J.Str "b") ];
            J.Obj [ ("s", J.Str "b"); ("d", J.Str "c") ];
            J.Obj
              [ ("s", J.Str "c"); ("d", J.Str "c"); ("dist", J.Num 1.0) ];
          ] );
    ]

(* Lines that must each come back as one structured error (the %s takes
   the request id where one fits). *)
let malformed id =
  [
    "this is not json";
    "{\"id\":";
    "{\"op\":\"explore\",\"bench\":\"applu\"}";
    Printf.sprintf "{\"id\":%S,\"op\":\"frobnicate\"}" id;
    Printf.sprintf "{\"id\":%S,\"op\":\"explore\"}" id;
    Printf.sprintf "{\"id\":%S,\"op\":\"explore\",\"bench\":\"nosuchbench\"}" id;
    Printf.sprintf
      "{\"id\":%S,\"op\":\"schedule\",\"dsl\":\"loop x\\nend\\n\"}" id;
  ]

let requests ?(mix = Full) ?(n_loops = 2) ~seed n =
  let rng = Rng.create seed in
  let benches = List.map (fun s -> s.Specfp.name) Specfp.all in
  let obj fields = J.to_string (J.Obj fields) in
  let machine_fields rng =
    [ ("buses", J.Num (float_of_int (Rng.pick rng [ 1; 2 ]))) ]
    @
    match Rng.pick rng [ None; Some 16; Some 8; Some 4 ] with
    | None -> []
    | Some s -> [ ("grid_steps", J.Num (float_of_int s)) ]
  in
  let explore ?budget ?degrade id =
    obj
      ([
         ("id", J.Str id);
         ("op", J.Str "explore");
         ("bench", J.Str (Rng.pick rng benches));
         ("loops", J.Num (float_of_int n_loops));
       ]
      @ machine_fields rng
      @ (match budget with
        | None -> []
        | Some b -> [ ("budget", J.Num (float_of_int b)) ])
      @
      match degrade with
      | None -> []
      | Some d -> [ ("degrade", J.Bool d) ])
  in
  let schedule id =
    let trip = Rng.pick rng [ 64; 128; 256 ] in
    if Rng.chance rng 0.4 then
      obj
        ([
           ("id", J.Str id);
           ("op", J.Str "schedule");
           ("graph", graph_payload trip);
         ]
        @ machine_fields rng)
    else
      obj
        ([
           ("id", J.Str id);
           ("op", J.Str "schedule");
           ("dsl", J.Str (Rng.pick rng (dsl_corpus trip)));
         ]
        @ machine_fields rng)
  in
  let line i =
    let id = Printf.sprintf "r%06d" i in
    match mix with
    | Clean ->
      if Rng.chance rng 0.75 then explore id else schedule id
    | Full ->
      let roll = Rng.int rng 100 in
      if roll < 60 then explore id
      else if roll < 80 then schedule id
      else if roll < 88 then
        (* A work cap the scheduler cannot fit in: a structured
           budget-exhausted error, or the degraded estimate when the
           client opts in. *)
        explore ~budget:1 ~degrade:(Rng.chance rng 0.3) id
      else Rng.pick rng (malformed id)
  in
  let rec go acc i = if i >= n then List.rev acc else go (line i :: acc) (i + 1) in
  go [] 0

(* ----- deadline decoration ----------------------------------------- *)

(* Append "deadline_ms" to a generated request line.  Re-rendering
   through Jsonx keeps the result deterministic; non-object lines (the
   malformed corpus) pass through untouched. *)
let with_deadline ms line =
  match J.of_string line with
  | Ok (J.Obj fields) when not (List.mem_assoc "deadline_ms" fields) ->
    J.to_string (J.Obj (fields @ [ ("deadline_ms", J.Num (float_of_int ms)) ]))
  | Ok _ | Error _ -> line

(* ----- response classification ------------------------------------- *)

type outcome_class = Ok_answer | Shed | Deadline_exceeded | Error_answer

let classify line =
  match Proto.parse_response line with
  | Ok r when r.Proto.ok -> Ok_answer
  | Ok { Proto.error = Some d; _ } -> (
    match Hcv_obs.Diag.code d with
    | "overloaded" -> Shed
    | "deadline-exceeded" -> Deadline_exceeded
    | _ -> Error_answer)
  | Ok { Proto.error = None; _ } | Error _ -> Error_answer

(* ----- adversarial personas ---------------------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let run_requests ~connect lines =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      let ic = Unix.in_channel_of_descr fd in
      List.map
        (fun line ->
          match
            write_all fd (line ^ "\n");
            input_line ic
          with
          | resp -> (line, Some resp)
          | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
            (line, None))
        lines)

let run_slowloris ~connect ?(duration_s = 0.5) ?(interval_s = 0.005)
    ?(reap_grace_s = 20.) () =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      (* A request that never completes: dribble bytes of a line, one
         at a time, without ever sending its newline. *)
      let payload = {|{"id":"loris","op":"ping","pad":"|} in
      let t0 = Unix.gettimeofday () in
      let reset = ref false in
      let i = ref 0 in
      while (not !reset) && Unix.gettimeofday () -. t0 < duration_s do
        (match
           Unix.write_substring fd payload (!i mod String.length payload) 1
         with
        | _ -> incr i
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          reset := true
        | exception Unix.Unix_error _ -> reset := true);
        Unix.sleepf interval_s
      done;
      (* The server reaped us iff the socket reports EOF/reset.  The
         slow timeout runs on the server's responsive clock, so under a
         compute-heavy drill the reap can land well after [duration_s]:
         wait for it (bounded by [reap_grace_s]) rather than probing
         once.  The server never writes to this connection, so
         readability means exactly the close. *)
      !reset
      ||
      match Unix.select [ fd ] [] [] reap_grace_s with
      | [], _, _ -> false
      | _ -> (
        match Unix.read fd (Bytes.create 1) 0 1 with
        | 0 -> true
        | _ -> false
        | exception Unix.Unix_error _ -> true)
      | exception Unix.Unix_error _ -> true)

let run_disconnect ~connect lines =
  let fd = connect () in
  (* Pipeline complete lines, then tear the connection mid-frame: the
     torn tail must be dropped server-side, the slot reclaimed, and no
     other connection disturbed. *)
  (try
     List.iter (fun l -> write_all fd (l ^ "\n")) lines;
     write_all fd {|{"id":"torn","op":"explore","bench":"ap|}
   with Unix.Unix_error _ -> ());
  close_quiet fd

let run_burst ~connect lines =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      let ic = Unix.in_channel_of_descr fd in
      (try List.iter (fun l -> write_all fd (l ^ "\n")) lines
       with Unix.Unix_error _ -> ());
      let rec go acc k =
        if k = 0 then List.rev acc
        else
          match input_line ic with
          | resp -> go (resp :: acc) (k - 1)
          | exception (End_of_file | Sys_error _) -> List.rev acc
      in
      go [] (List.length lines))

let run_flood ~connect ?(line_bytes = 1 lsl 16) n =
  run_burst ~connect (List.init n (fun _ -> String.make line_bytes 'x'))

let percentile xs p =
  match List.sort compare xs with
  | [] -> Float.nan
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let summary_json ?(shed = 0) ?(deadline_exceeded = 0) ?(transport = 0)
    ~requests ~concurrency ~wall_ns ~ok ~errors ~latencies_ns () =
  let rps =
    if wall_ns > 0.0 then float_of_int requests /. (wall_ns /. 1e9) else 0.0
  in
  J.Obj
    [
      ("schema", J.Str "hcvliw-serve-load-v2");
      ("requests", J.Num (float_of_int requests));
      ("concurrency", J.Num (float_of_int concurrency));
      ("wall_ns", J.Num wall_ns);
      ("rps", J.Num rps);
      ("ok", J.Num (float_of_int ok));
      ("errors", J.Num (float_of_int errors));
      ("shed", J.Num (float_of_int shed));
      ("deadline_exceeded", J.Num (float_of_int deadline_exceeded));
      ("transport_errors", J.Num (float_of_int transport));
      ("p50_ns", J.Num (percentile latencies_ns 0.50));
      ("p99_ns", J.Num (percentile latencies_ns 0.99));
    ]
