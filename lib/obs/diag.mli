(** Structured diagnostics: the error currency of the staged pipeline.

    A [Diag.t] replaces the bare [string] errors (and the
    pipeline-reachable [failwith]s) of the flow: it carries a
    machine-readable [code], the [stage] that raised it (filled in by
    {!Hcv_pass.Pass.run} when the stage itself did not), the human
    message, and a list of key/value context pairs (loop name, IT,
    attempt count, ...) that make a failure debuggable without re-running
    under a logger.

    Internal invariant violations — caller bugs, not input conditions —
    stay [assert]/[invalid_arg]; a [Diag.t] is for conditions an end-to-
    end run can legitimately hit. *)

type t = {
  stage : string option;  (** pipeline stage provenance, e.g. ["schedule"] *)
  code : string;  (** stable machine-readable identifier, kebab-case *)
  msg : string;
  context : (string * string) list;
}

val v : ?stage:string -> code:string -> ?context:(string * string) list
  -> string -> t

val f :
  ?stage:string -> code:string -> ?context:(string * string) list
  -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [f ~code fmt ...] builds the message with a format string. *)

val with_stage : string -> t -> t
(** Set the stage provenance if the diagnostic does not have one yet
    (the innermost stage wins). *)

val add_context : (string * string) list -> t -> t
(** Append context pairs (outermost last). *)

val code : t -> string
val stage : t -> string option
val message : t -> string

val fields : t -> (string * string) list
(** Machine-readable rendering: [("stage", ...); ("code", ...);
    ("msg", ...)] followed by the context pairs.  Stable field order —
    this is what the trace/JSONL layer serializes. *)

val pp : Format.formatter -> t -> unit
(** ["stage/code: msg (k=v, ...)"]. *)

val to_string : t -> string
