type node = {
  name : string;
  attrs : (string * string) list;
  counters : (string * int) list;
  volatile : (string * float) list;
  wall_ns : float;
  children : node list;
}

type state = {
  s_name : string;
  mutable s_attrs : (string * string) list;  (* reverse creation order *)
  mutable s_counters : (string * int ref) list;
  mutable s_volatile : (string * float ref) list;
  s_start_ns : float;
  mutable s_children : node list;  (* reverse completion order *)
  s_mutex : Mutex.t;
}

type span = Null | Active of state

let null = Null
let enabled = function Null -> false | Active _ -> true
let now_ns () = Unix.gettimeofday () *. 1e9

let fresh ~attrs name =
  {
    s_name = name;
    s_attrs = List.rev attrs;
    s_counters = [];
    s_volatile = [];
    s_start_ns = now_ns ();
    s_children = [];
    s_mutex = Mutex.create ();
  }

let root ?(attrs = []) name = Active (fresh ~attrs name)

let locked st f =
  Mutex.lock st.s_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.s_mutex) f

let freeze st ~wall_ns =
  locked st (fun () ->
      {
        name = st.s_name;
        attrs = List.rev st.s_attrs;
        counters =
          List.sort compare
            (List.map (fun (k, r) -> (k, !r)) st.s_counters);
        volatile =
          List.sort compare
            (List.map (fun (k, r) -> (k, !r)) st.s_volatile);
        wall_ns;
        children = List.rev st.s_children;
      })

let attach parent node =
  locked parent (fun () -> parent.s_children <- node :: parent.s_children)

let span parent ?(attrs = []) name f =
  match parent with
  | Null -> f Null
  | Active p ->
    let st = fresh ~attrs name in
    Fun.protect
      ~finally:(fun () ->
        attach p (freeze st ~wall_ns:(now_ns () -. st.s_start_ns)))
      (fun () -> f (Active st))

let add sp key n =
  match sp with
  | Null -> ()
  | Active st ->
    locked st (fun () ->
        match List.assoc_opt key st.s_counters with
        | Some r -> r := !r + n
        | None -> st.s_counters <- (key, ref n) :: st.s_counters)

let incr sp key = add sp key 1

let vol sp key v =
  match sp with
  | Null -> ()
  | Active st ->
    locked st (fun () ->
        match List.assoc_opt key st.s_volatile with
        | Some r -> r := !r +. v
        | None -> st.s_volatile <- (key, ref v) :: st.s_volatile)

let set_attr sp key v =
  match sp with
  | Null -> ()
  | Active st -> locked st (fun () -> st.s_attrs <- (key, v) :: st.s_attrs)

let graft sp node = match sp with Null -> () | Active st -> attach st node

let export = function
  | Null -> None
  | Active st -> Some (freeze st ~wall_ns:(now_ns () -. st.s_start_ns))

let rec counter_total node key =
  Option.value (List.assoc_opt key node.counters) ~default:0
  + List.fold_left (fun acc c -> acc + counter_total c key) 0 node.children

let find_all node key =
  let rec go acc n =
    let acc = if n.name = key then n :: acc else acc in
    List.fold_left go acc n.children
  in
  List.rev (go [] node)
