(** End-of-run metrics rendering: one {!Hcv_support.Tablefmt} row per
    span of an exported trace, with wall time, the deterministic
    counters and the volatile gauges. *)

val table : Trace.node -> Hcv_support.Tablefmt.t
(** Pre-order walk of the tree; nesting shown by indentation.  Counters
    render as ["k=v"] pairs sorted by name, volatile gauges likewise
    (2 decimals). *)

val print : Format.formatter -> Trace.node -> unit
(** Render {!table} to the formatter. *)
