(** Structured spans and counters.

    A span is one timed, named region of the flow (a pipeline stage, a
    sweep, one cell of a sweep); it carries static [attrs], integer
    [counters] and float [volatile] gauges, and nests to form a tree.

    Determinism contract (what lets traces be golden-pinned): the span
    *tree* and the *counter* values depend only on the computation —
    children attach in completion order of a sequential caller (or in
    explicit {!graft} order for parallel work, which callers issue in
    submission order), counters are exported sorted by name, and nothing
    about worker count or timing can reach them.  Wall-clock durations
    and [volatile] gauges (per-worker utilisation, cache hit counts —
    anything legitimately run-dependent) are the escape hatch: renderers
    exclude them from the deterministic view.

    Cost contract: {!null} is free.  Every operation on a null span is a
    single pattern match with no allocation, so hot paths
    (e.g. [Pseudo.estimate]) can take a span parameter defaulting to
    {!null} without perturbing the perf baseline. *)

type node = {
  name : string;
  attrs : (string * string) list;  (** creation order *)
  counters : (string * int) list;  (** sorted by name *)
  volatile : (string * float) list;
      (** sorted by name; excluded from the deterministic view *)
  wall_ns : float;  (** excluded from the deterministic view *)
  children : node list;
}

type span

val null : span
(** The no-op span: collects nothing, costs nothing. *)

val enabled : span -> bool

val root : ?attrs:(string * string) list -> string -> span
(** A fresh collecting root. *)

val span :
  span -> ?attrs:(string * string) list -> string -> (span -> 'a) -> 'a
(** [span parent name f] runs [f] in a child span of [parent]; the
    child attaches to [parent] when [f] returns (or raises).  On a null
    parent, [f] runs with {!null}. *)

val add : span -> string -> int -> unit
(** Add to a counter (created at 0 on first use).  Thread-safe. *)

val incr : span -> string -> unit

val vol : span -> string -> float -> unit
(** Add to a volatile gauge.  Thread-safe. *)

val set_attr : span -> string -> string -> unit
(** Append an attribute (last write appears last; attrs are not deduped
    so only set each key once). *)

val graft : span -> node -> unit
(** Attach an exported subtree as a child — how the per-cell traces of
    a parallel sweep join the coordinator's tree.  Callers must graft in
    submission order to keep the tree deterministic. *)

val export : span -> node option
(** Snapshot a span (normally the root) as an immutable tree; [None]
    for {!null}.  The span's wall clock is read at export time. *)

(** {2 Tree helpers} *)

val counter_total : node -> string -> int
(** Sum of a counter over the whole tree. *)

val find_all : node -> string -> node list
(** All nodes with the given name, pre-order. *)
