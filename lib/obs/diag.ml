type t = {
  stage : string option;
  code : string;
  msg : string;
  context : (string * string) list;
}

let v ?stage ~code ?(context = []) msg = { stage; code; msg; context }

let f ?stage ~code ?context fmt =
  Format.kasprintf (fun msg -> v ?stage ~code ?context msg) fmt

let with_stage stage t =
  match t.stage with Some _ -> t | None -> { t with stage = Some stage }

let add_context pairs t = { t with context = t.context @ pairs }
let code t = t.code
let stage t = t.stage
let message t = t.msg

let fields t =
  (match t.stage with None -> [] | Some s -> [ ("stage", s) ])
  @ [ ("code", t.code); ("msg", t.msg) ]
  @ t.context

let pp ppf t =
  (match t.stage with
  | None -> Format.fprintf ppf "%s" t.code
  | Some s -> Format.fprintf ppf "%s/%s" s t.code);
  Format.fprintf ppf ": %s" t.msg;
  match t.context with
  | [] -> ()
  | ctx ->
    Format.fprintf ppf " (%s)"
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ctx))

let to_string t = Format.asprintf "%a" pp t
