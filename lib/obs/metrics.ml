open Hcv_support

let pairs to_s kvs =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ to_s v) kvs)

let table node =
  let t =
    Tablefmt.create
      [
        ("span", Tablefmt.Left);
        ("wall ms", Tablefmt.Right);
        ("counters", Tablefmt.Left);
        ("volatile", Tablefmt.Left);
      ]
  in
  let rec row depth (n : Trace.node) =
    let indent = String.make (2 * depth) ' ' in
    let name =
      match n.Trace.attrs with
      | [] -> n.Trace.name
      | attrs -> n.Trace.name ^ "{" ^ pairs Fun.id attrs ^ "}"
    in
    Tablefmt.add_row t
      [
        indent ^ name;
        Printf.sprintf "%.2f" (n.Trace.wall_ns /. 1e6);
        pairs string_of_int n.Trace.counters;
        pairs (Printf.sprintf "%.2f") n.Trace.volatile;
      ];
    List.iter (row (depth + 1)) n.Trace.children
  in
  row 0 node;
  t

let print ppf node = Format.fprintf ppf "%s" (Tablefmt.render (table node))
