open Hcv_support

type point =
  | Task_raise
  | Torn_write
  | Cache_open_fail
  | Slow_cell
  | Rename_fail
  | Conn_stall
  | Conn_close
  | Torn_frame
  | Slow_write

exception Injected of { point : point; transient : bool }

type spec = {
  point : point;
  prob : float;
  max_fires : int;
  key : string option;
  transient : bool;
}

let spec ?(prob = 1.0) ?(max_fires = 1) ?key ?(transient = true) point =
  { point; prob; max_fires; key; transient }

(* One armed spec: its own rng stream (so per-point sequences are
   independent of query interleaving across points) and a firing
   count that outlives disarm, for reporting. *)
type cell = { spec : spec; rng : Rng.t; mutable fired : int }

type plan = { cells : cell list; mutex : Mutex.t }

let plan ~seed specs =
  let root = Rng.create seed in
  {
    cells = List.map (fun spec -> { spec; rng = Rng.split root; fired = 0 }) specs;
    mutex = Mutex.create ();
  }

let state : plan option ref = ref None

let arm p = state := Some p
let disarm () = state := None
let armed () = !state <> None

let with_plan p f =
  arm p;
  Fun.protect ~finally:disarm f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let key_matches cell key =
  match (cell.spec.key, key) with
  | None, _ -> true
  | Some _, None -> false
  | Some sub, Some k -> contains ~sub k

(* Walk the armed specs for [point]; the first matching spec that has
   firings left and wins its coin toss fires.  Every matching spec
   consulted advances its own stream, so the sequence each spec sees
   depends only on how many times it was asked. *)
let fire_armed p ?key point =
  Mutex.protect p.mutex (fun () ->
      let rec go = function
        | [] -> None
        | cell :: rest ->
          if
            cell.spec.point = point
            && key_matches cell key
            && cell.fired < cell.spec.max_fires
            && Rng.chance cell.rng cell.spec.prob
          then begin
            cell.fired <- cell.fired + 1;
            Some cell.spec
          end
          else go rest
      in
      go p.cells)

let fire ?key point =
  match !state with
  | None -> false
  | Some p -> fire_armed p ?key point <> None

let raise_if ?key point =
  match !state with
  | None -> ()
  | Some p -> (
    match fire_armed p ?key point with
    | None -> ()
    | Some spec -> raise (Injected { point; transient = spec.transient }))

let fires p = List.map (fun c -> (c.spec.point, c.fired)) p.cells

let total_fires p = List.fold_left (fun acc c -> acc + c.fired) 0 p.cells

let point_name = function
  | Task_raise -> "task-raise"
  | Torn_write -> "torn-write"
  | Cache_open_fail -> "cache-open-fail"
  | Slow_cell -> "slow-cell"
  | Rename_fail -> "rename-fail"
  | Conn_stall -> "conn-stall"
  | Conn_close -> "conn-close"
  | Torn_frame -> "torn-frame"
  | Slow_write -> "slow-write"

let all_points =
  [
    Task_raise;
    Torn_write;
    Cache_open_fail;
    Slow_cell;
    Rename_fail;
    Conn_stall;
    Conn_close;
    Torn_frame;
    Slow_write;
  ]

let point_of_name s =
  List.find_opt (fun p -> point_name p = s) all_points

let () =
  Printexc.register_printer (function
    | Injected { point; transient } ->
      Some
        (Printf.sprintf "injected fault at %s (%s)" (point_name point)
           (if transient then "transient" else "persistent"))
    | _ -> None)
