(** The deterministic fault-injection plane.

    Chaos testing for the explore→select→schedule stack: a {!plan}
    names the fault points to perturb, each with a firing probability,
    a firing cap and an optional key filter, all driven by a seeded
    {!Hcv_support.Rng} stream per point so every chaos run is
    reproducible.  {!arm} installs the plan globally; instrumented code
    asks {!fire} at its fault points and injects the corresponding
    failure (raise, torn write, refused open, artificial delay) when it
    answers [true].

    Cost contract: the plane is {e off by default at zero cost}.  With
    no plan armed, {!fire} is one global load and a pattern match — no
    allocation, no locking — so fault points may sit on warm paths
    without perturbing the perf baseline (the [test_obs] minor-words
    check pins this).

    Concurrency: arming/disarming is meant to bracket a whole run from
    the coordinating domain; the armed state itself is mutex-protected,
    so worker domains may query {!fire} concurrently.  Which worker
    draws the n-th firing depends on scheduling, but the total number
    of firings per point (and everything a *recovered* run prints) does
    not. *)

type point =
  | Task_raise  (** a sweep cell's task raises before running *)
  | Torn_write  (** a cache append stops mid-record (kill simulation) *)
  | Cache_open_fail  (** the cache directory refuses to open *)
  | Slow_cell  (** a worker stalls briefly, shuffling completion order *)
  | Rename_fail  (** the atomic-compact rename step fails *)
  | Conn_stall
      (** socket layer: processing of a readable connection stalls
          briefly, shuffling read interleaving across connections *)
  | Conn_close
      (** socket layer: a connection is dropped abruptly, as if the
          peer reset it mid-stream *)
  | Torn_frame
      (** socket layer: a read delivers a single byte, tearing request
          lines across reads (partial-read simulation) *)
  | Slow_write
      (** socket layer: a write accepts a single byte, forcing the
          partial-write resume path (slow-reader simulation) *)

exception Injected of { point : point; transient : bool }
(** What an armed [Task_raise] point raises.  [transient] faults are
    the retryable kind ({!Retry} recovers them); persistent ones model
    a deterministic bug and fail the task immediately. *)

type spec = {
  point : point;
  prob : float;  (** chance that a matching query fires *)
  max_fires : int;  (** stop firing after this many hits *)
  key : string option;
      (** only fire on queries whose key contains this substring
          (e.g. one cell's content hash); [None] matches every query *)
  transient : bool;  (** raised faults are retryable *)
}

val spec :
  ?prob:float -> ?max_fires:int -> ?key:string -> ?transient:bool -> point
  -> spec
(** Defaults: [prob = 1.0], [max_fires = 1], no key filter,
    [transient = true]. *)

type plan

val plan : seed:int -> spec list -> plan
(** A fresh plan; each spec gets its own rng stream split from [seed],
    so per-point firing sequences are independent and reproducible. *)

val arm : plan -> unit
(** Install [plan] globally (replacing any armed plan).  Fire counts
    live in the plan, so they survive {!disarm} for reporting. *)

val disarm : unit -> unit
val armed : unit -> bool

val with_plan : plan -> (unit -> 'a) -> 'a
(** [arm], run, always [disarm]. *)

val fire : ?key:string -> point -> bool
(** Should this fault point inject a failure now?  Always [false] when
    nothing is armed (the zero-cost path). *)

val raise_if : ?key:string -> point -> unit
(** @raise Injected when {!fire} answers [true] (with the matching
    spec's [transient] flag). *)

val fires : plan -> (point * int) list
(** Firing counts per armed spec, in spec order. *)

val total_fires : plan -> int

val point_name : point -> string
(** Stable kebab-case name (["task-raise"], ["torn-write"], ...). *)

val point_of_name : string -> point option
val all_points : point list
