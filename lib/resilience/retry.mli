(** Bounded retry with exponential backoff — the supervision policy the
    {!Hcv_explore.Engine} applies to every sweep cell.

    A task that raises is retried up to [max_attempts] times with a
    doubling backoff between attempts; a task that keeps failing is
    folded into a structured {!Hcv_obs.Diag.t} (code ["task-failed"])
    so the caller can quarantine it instead of aborting the run.
    Persistent injected faults ({!Inject.Injected} with
    [transient = false]) model deterministic bugs: they skip the
    pointless retries and fail immediately with code
    ["injected-fault"]. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  backoff_s : float;
      (** sleep before retry [n] is at most [backoff_s * 2^(n-1)]
          seconds; [0.0] disables sleeping (tests) *)
  jitter : float;
      (** fraction of each backoff randomly shaved off, in [0,1]: the
          sleep before retry [n] is drawn uniformly from
          [\[backoff * (1 - jitter), backoff\]].  The draw is seeded
          from the task label, so the same label always sleeps the same
          schedule (deterministic), while distinct cells de-synchronise
          instead of retrying in a burst.  [0.0] is the exact
          exponential. *)
}

val default_policy : policy
(** 3 attempts, 1 ms base backoff, 0.5 jitter. *)

val no_retry : policy
(** 1 attempt: supervision (failures become diagnostics) without
    retries. *)

val schedule : ?policy:policy -> label:string -> unit -> float list
(** The exact sleeps (seconds) [run] would take between attempts for
    this label, in order — [max_attempts - 1] entries.  Pure: equal
    (policy, label) pairs give equal schedules. *)

val run :
  ?policy:policy -> ?on_retry:(attempt:int -> exn -> unit) -> label:string
  -> (unit -> 'a) -> ('a, Hcv_obs.Diag.t) result
(** [run ~label f] applies [f] under the policy.  [label] lands in the
    diagnostic's context (the engine passes the cell key).  [on_retry]
    is called before each re-attempt with the attempt number that just
    failed and its exception. *)
