(** Bounded retry with exponential backoff — the supervision policy the
    {!Hcv_explore.Engine} applies to every sweep cell.

    A task that raises is retried up to [max_attempts] times with a
    doubling backoff between attempts; a task that keeps failing is
    folded into a structured {!Hcv_obs.Diag.t} (code ["task-failed"])
    so the caller can quarantine it instead of aborting the run.
    Persistent injected faults ({!Inject.Injected} with
    [transient = false]) model deterministic bugs: they skip the
    pointless retries and fail immediately with code
    ["injected-fault"]. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  backoff_s : float;
      (** sleep before retry [n] is [backoff_s * 2^(n-1)] seconds;
          [0.0] disables sleeping (tests) *)
}

val default_policy : policy
(** 3 attempts, 1 ms base backoff. *)

val no_retry : policy
(** 1 attempt: supervision (failures become diagnostics) without
    retries. *)

val run :
  ?policy:policy -> ?on_retry:(attempt:int -> exn -> unit) -> label:string
  -> (unit -> 'a) -> ('a, Hcv_obs.Diag.t) result
(** [run ~label f] applies [f] under the policy.  [label] lands in the
    diagnostic's context (the engine passes the cell key).  [on_retry]
    is called before each re-attempt with the attempt number that just
    failed and its exception. *)
