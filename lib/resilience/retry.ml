type policy = { max_attempts : int; backoff_s : float }

let default_policy = { max_attempts = 3; backoff_s = 0.001 }
let no_retry = { max_attempts = 1; backoff_s = 0.0 }

let run ?(policy = default_policy) ?(on_retry = fun ~attempt:_ _ -> ())
    ~label f =
  let max_attempts = max 1 policy.max_attempts in
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Inject.Injected { point; transient = false } ->
      (* A persistent injected fault models a deterministic bug:
         retrying cannot help, so fail fast with its own code. *)
      Error
        (Hcv_obs.Diag.v ~code:"injected-fault"
           ~context:
             [
               ("task", label);
               ("point", Inject.point_name point);
               ("attempt", string_of_int attempt);
             ]
           "persistent injected fault")
    | exception e ->
      if attempt < max_attempts then begin
        on_retry ~attempt e;
        if policy.backoff_s > 0.0 then
          Unix.sleepf (policy.backoff_s *. float_of_int (1 lsl (attempt - 1)));
        go (attempt + 1)
      end
      else
        Error
          (Hcv_obs.Diag.v ~code:"task-failed"
             ~context:
               [
                 ("task", label);
                 ("attempts", string_of_int attempt);
                 ("exn", Printexc.to_string e);
               ]
             "task failed on every attempt")
  in
  go 1
