open Hcv_support

type policy = { max_attempts : int; backoff_s : float; jitter : float }

let default_policy = { max_attempts = 3; backoff_s = 0.001; jitter = 0.5 }
let no_retry = { max_attempts = 1; backoff_s = 0.0; jitter = 0.0 }

(* FNV-1a over the label bytes: the jitter stream of a task is a pure
   function of its label (the engine passes the cell key), so two runs
   of the same cell sleep the same schedule — while distinct cells
   de-synchronise instead of retrying in lockstep. *)
let seed_of_label label =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    label;
  Int64.to_int !h

let schedule ?(policy = default_policy) ~label () =
  let jitter = Float.min 1.0 (Float.max 0.0 policy.jitter) in
  let rng = Rng.create (seed_of_label label) in
  List.init
    (max 0 (policy.max_attempts - 1))
    (fun i ->
      let base = policy.backoff_s *. float_of_int (1 lsl i) in
      (* Jitter shrinks the sleep (never grows it): full backoff stays
         the worst case, and jitter = 0 is the exact exponential. *)
      base *. (1.0 -. (jitter *. Rng.float rng 1.0)))

let run ?(policy = default_policy) ?(on_retry = fun ~attempt:_ _ -> ())
    ~label f =
  let max_attempts = max 1 policy.max_attempts in
  let sleeps = lazy (Array.of_list (schedule ~policy ~label ())) in
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Inject.Injected { point; transient = false } ->
      (* A persistent injected fault models a deterministic bug:
         retrying cannot help, so fail fast with its own code. *)
      Error
        (Hcv_obs.Diag.v ~code:"injected-fault"
           ~context:
             [
               ("task", label);
               ("point", Inject.point_name point);
               ("attempt", string_of_int attempt);
             ]
           "persistent injected fault")
    | exception e ->
      if attempt < max_attempts then begin
        on_retry ~attempt e;
        let s = (Lazy.force sleeps).(attempt - 1) in
        if s > 0.0 then Unix.sleepf s;
        go (attempt + 1)
      end
      else
        Error
          (Hcv_obs.Diag.v ~code:"task-failed"
             ~context:
               [
                 ("task", label);
                 ("attempts", string_of_int attempt);
                 ("exn", Printexc.to_string e);
               ]
             "task failed on every attempt")
  in
  go 1
