(* Scheduler hot-path microbenchmark harness.

   Times the scheduling-dominated stages of the pipeline — DDG analyses,
   pseudo-schedule estimation, multilevel partitioning, full
   heterogeneous modulo scheduling, and configuration selection — on a
   fixed slice of the synthetic SPECfp workload suite.  Each stage is
   run [reps] times against a monotonic clock and the median wall time
   is reported; the result is written as JSON (BENCH_*.json) so the
   perf trajectory of the repository is recorded PR over PR.

   When a baseline file (recorded by this same harness at an earlier
   commit) is present, per-stage speedups are computed against it and
   embedded in the output. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload
module J = Hcv_explore.Jsonx

let seed = 42
let schema = "hcvliw-perf-v1"

(* The stages whose median speedup the acceptance gate tracks. *)
let sched_stages = [ "pseudo"; "partition"; "hsched" ]

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let median xs =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  if n = 0 then 0.0
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* One warm-up run, then [reps] timed runs. *)
let time_runs ~reps f =
  f ();
  List.init reps (fun _ ->
      let t0 = now_ns () in
      f ();
      now_ns () -. t0)

type workload = {
  machine : Machine.t;
  loops : Loop.t list;
  profile : Profile.t;
  ctx : Model.ctx;
  config : Opconfig.t;
  sched_items : (Loop.t * Hcv_sched.Clocking.t * int array) list;
      (* loop, first synchronisable clocking at/above MIT, deterministic
         initial assignment — the estimator/partitioner inputs. *)
}

let clocking_for ~config loop =
  let ddg = loop.Loop.ddg in
  let mit = Mit.mit ~config ddg in
  let mit =
    if Q.sign mit <= 0 then Mit.next_candidate ~config ~after:Q.zero else mit
  in
  let rec go it n =
    if n > 64 then None
    else
      match Hcv_sched.Clocking.of_config ~config ~it with
      | Ok c -> Some c
      | Error _ -> go (Mit.next_candidate ~config ~after:it) (n + 1)
  in
  go mit 0

let setup ~quick name =
  let machine = Presets.machine_4c ~buses:1 in
  let n_loops = if quick then 2 else 4 in
  let spec = Option.get (Specfp.find name) in
  let loops = Specfp.loops ~n_loops ~seed spec in
  match Profile.profile ~machine ~loops () with
  | Error d ->
    failwith (Printf.sprintf "perf setup %s: %s" name (Hcv_obs.Diag.to_string d))
  | Ok profile ->
    let units =
      Units.of_reference ~params:Params.default ~n_clusters:4
        profile.Profile.activity
    in
    let ctx = Model.ctx ~params:Params.default ~units () in
    let config =
      match Select.select_heterogeneous ~ctx ~machine profile with
      | Ok c -> c.Select.config
      | Error d ->
        failwith
          (Printf.sprintf "perf setup %s: %s" name (Hcv_obs.Diag.to_string d))
    in
    let sched_items =
      List.filter_map
        (fun (loop : Loop.t) ->
          match clocking_for ~config loop with
          | None -> None
          | Some clocking ->
            let assignment =
              Hcv_sched.Partition.initial_even ~n_clusters:4 loop.Loop.ddg
            in
            Some (loop, clocking, assignment))
        loops
    in
    { machine; loops; profile; ctx; config; sched_items }

(* ----- the timed stages ------------------------------------------- *)

let stage_ddg ws () =
  List.iter
    (fun w ->
      List.iter
        (fun (lp : Loop.t) ->
          let ddg = lp.Loop.ddg in
          for _ = 1 to 20 do
            ignore (Ddg.topo_order ddg);
            ignore (Ddg.earliest_starts ddg);
            ignore (Ddg.heights ddg);
            ignore (Ddg.fu_demand ddg)
          done)
        w.loops)
    ws

let stage_pseudo ws () =
  List.iter
    (fun w ->
      List.iter
        (fun (loop, clocking, assignment) ->
          for _ = 1 to 5 do
            ignore
              (Hcv_sched.Pseudo.estimate ~machine:w.machine ~clocking ~loop
                 ~assignment ())
          done)
        w.sched_items)
    ws

let stage_partition ws () =
  List.iter
    (fun w ->
      List.iter
        (fun ((loop : Loop.t), clocking, _) ->
          (* One timing memo shared across the partitioner's score calls,
             matching Hsched's calling convention (one memo per IT
             attempt). *)
          let memo = Hcv_sched.Timing.Memo.create clocking in
          let score assignment =
            Hcv_sched.Pseudo.score
              (Hcv_sched.Pseudo.estimate ~memo ~machine:w.machine ~clocking
                 ~loop ~assignment ())
          in
          ignore
            (Hcv_sched.Partition.run ~n_clusters:4 ~ddg:loop.Loop.ddg ~seed:0
               ~score ()))
        w.sched_items)
    ws

let stage_hsched ws () =
  List.iter
    (fun w ->
      List.iter
        (fun (lp : Loop.t) ->
          ignore (Hsched.schedule ~ctx:w.ctx ~config:w.config ~loop:lp ()))
        w.loops)
    ws

let stage_select ws () =
  List.iter
    (fun w ->
      ignore (Select.select_heterogeneous ~ctx:w.ctx ~machine:w.machine w.profile))
    ws

(* ----- partition microbench --------------------------------------- *)

(* Splits the partition stage into its two halves — hierarchy
   construction (reusable across IT attempts, restarts and scores) and
   refinement over a prebuilt hierarchy — and reports the rewritten
   partitioner's work counters (exact score evaluations vs
   transfer-delta-pruned candidates).  Run via the bench
   "partition-micro" selector; results go to stdout. *)
let partition_micro ~quick ~reps () =
  let bench_names =
    if quick then [ "sixtrack"; "facerec" ]
    else [ "sixtrack"; "facerec"; "galgel" ]
  in
  Printf.eprintf "partition-micro: setting up workloads (%s)...\n%!"
    (String.concat ", " bench_names);
  let ws = List.map (setup ~quick) bench_names in
  let items =
    List.concat_map
      (fun w -> List.map (fun it -> (w, it)) w.sched_items)
      ws
  in
  let score_for (w : workload) (loop : Loop.t) clocking =
    let memo = Hcv_sched.Timing.Memo.create clocking in
    fun assignment ->
      Hcv_sched.Pseudo.score
        (Hcv_sched.Pseudo.estimate ~memo ~machine:w.machine ~clocking ~loop
           ~assignment ())
  in
  let build_ns =
    median
      (time_runs ~reps (fun () ->
           List.iter
             (fun (_, ((loop : Loop.t), _, _)) ->
               ignore (Hcv_sched.Partition.Hier.build ~ddg:loop.Loop.ddg ()))
             items))
  in
  let hiers =
    List.map
      (fun (w, ((loop : Loop.t), clocking, _)) ->
        (w, loop, clocking, Hcv_sched.Partition.Hier.build ~ddg:loop.Loop.ddg ()))
      items
  in
  let refine ?obs () =
    List.iter
      (fun (w, loop, clocking, hier) ->
        ignore
          (Hcv_sched.Partition.run_hier ?obs ~n_clusters:4 ~hier ~seed:0
             ~score:(score_for w loop clocking) ()))
      hiers
  in
  let refine_ns = median (time_runs ~reps (fun () -> refine ())) in
  let full_ns =
    median
      (time_runs ~reps (fun () ->
           List.iter
             (fun (w, ((loop : Loop.t), clocking, _)) ->
               ignore
                 (Hcv_sched.Partition.run ~n_clusters:4 ~ddg:loop.Loop.ddg
                    ~seed:0 ~score:(score_for w loop clocking) ()))
             items))
  in
  (* One counted pass for the work profile. *)
  let root = Hcv_obs.Trace.root "partition-micro" in
  refine ~obs:root ();
  let total name =
    match Hcv_obs.Trace.export root with
    | Some node -> Hcv_obs.Trace.counter_total node name
    | None -> 0
  in
  Printf.printf "partition microbench (%d loops, %d reps)\n" (List.length items)
    reps;
  Printf.printf "  hier build (all loops)     %8.2f ms\n" (build_ns /. 1e6);
  Printf.printf "  refine over prebuilt hier  %8.2f ms\n" (refine_ns /. 1e6);
  Printf.printf "  full run (build + refine)  %8.2f ms\n" (full_ns /. 1e6);
  Printf.printf
    "  per refine pass: %d exact evals, %d pruned candidates, %d memo hits, \
     %d moves\n"
    (total "partition.exact_evals")
    (total "partition.proxy_pruned")
    (total "partition.score_memo_hits")
    (total "partition.refine_moves");
  Printf.printf
    "  hierarchy amortisation: build is %.1f%% of a full run; every extra \
     seed/score over the same hier saves it\n"
    (100.0 *. build_ns /. full_ns)

(* ----- baseline / output ------------------------------------------ *)

let read_baseline file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match J.of_string s with
    | Error _ -> None
    | Ok j ->
      Option.bind (J.member "stages" j) (function
        | J.Obj fields ->
          Some
            (List.filter_map
               (fun (name, v) ->
                 Option.bind (J.member "median_ns" v) J.num
                 |> Option.map (fun ns -> (name, ns)))
               fields)
        | _ -> None)
  end

let write_file file s =
  let oc = open_out_bin file in
  output_string oc s;
  close_out oc

let run ~quick ~reps ~out ~baseline ?gate () =
  let bench_names =
    if quick then [ "sixtrack"; "facerec" ]
    else [ "sixtrack"; "facerec"; "galgel" ]
  in
  Printf.eprintf "perf: setting up workloads (%s)...\n%!"
    (String.concat ", " bench_names);
  let ws = List.map (setup ~quick) bench_names in
  let stages =
    [
      ("ddg", stage_ddg ws);
      ("pseudo", stage_pseudo ws);
      ("partition", stage_partition ws);
      ("hsched", stage_hsched ws);
      ("select", stage_select ws);
    ]
  in
  let results =
    List.map
      (fun (name, f) ->
        Printf.eprintf "perf: timing %-10s (%d reps)...%!" name reps;
        let runs = time_runs ~reps f in
        let med = median runs in
        Printf.eprintf " median %.3f ms\n%!" (med /. 1e6);
        (name, med, runs))
      stages
  in
  let base = read_baseline baseline in
  let speedups =
    Option.map
      (fun base ->
        List.filter_map
          (fun (name, med, _) ->
            match List.assoc_opt name base with
            | Some b when med > 0.0 -> Some (name, b /. med)
            | Some _ | None -> None)
          results)
      base
  in
  let sched_speedup =
    Option.map
      (fun sp ->
        median
          (List.filter_map
             (fun s -> List.assoc_opt s sp)
             sched_stages))
      speedups
  in
  let total = List.fold_left (fun acc (_, med, _) -> acc +. med) 0.0 results in
  let json =
    J.Obj
      ([
         ("schema", J.Str schema);
         ("quick", J.Bool quick);
         ("reps", J.Num (float_of_int reps));
         ("seed", J.Num (float_of_int seed));
         ("workloads", J.List (List.map (fun n -> J.Str n) bench_names));
         ( "stages",
           J.Obj
             (List.map
                (fun (name, med, runs) ->
                  ( name,
                    J.Obj
                      [
                        ("median_ns", J.Num med);
                        ("runs_ns", J.List (List.map (fun r -> J.Num r) runs));
                      ] ))
                results) );
         ("total_median_ns", J.Num total);
       ]
      @ (match speedups with
        | None -> []
        | Some sp ->
          [
            ("baseline", J.Str baseline);
            ( "speedup_vs_baseline",
              J.Obj (List.map (fun (n, s) -> (n, J.Num s)) sp) );
          ])
      @
      match sched_speedup with
      | None -> []
      | Some s -> [ ("median_speedup_sched_stages", J.Num s) ])
  in
  write_file out (J.to_string json ^ "\n");
  Printf.eprintf "perf: wrote %s\n%!" out;
  (match speedups with
  | None ->
    Printf.eprintf "perf: no baseline at %s — speedups not computed\n%!"
      baseline
  | Some sp ->
    List.iter
      (fun (n, s) -> Printf.eprintf "perf: %-10s %5.2fx vs baseline\n%!" n s)
      sp;
    match sched_speedup with
    | Some s ->
      Printf.eprintf "perf: median speedup over %s: %.2fx\n%!"
        (String.concat "/" sched_stages)
        s
    | None -> ());
  (* Acceptance gate: the tracing-off scheduler must stay within noise
     of the pinned baseline.  Only meaningful when a baseline exists. *)
  match (gate, sched_speedup) with
  | Some g, Some s when s < g ->
    Printf.eprintf
      "perf: FAIL — median sched-stage speedup %.2fx below gate %.2fx\n%!" s g;
    exit 1
  | Some g, Some s ->
    Printf.eprintf "perf: gate ok (%.2fx >= %.2fx)\n%!" s g
  | Some g, None ->
    Printf.eprintf
      "perf: gate %.2fx requested but no baseline at %s — not enforced\n%!" g
      baseline
  | None, _ -> ()
