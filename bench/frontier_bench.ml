(* Frontier-mode benchmark: sweep cost vs frontier size.

   Each benchmark runs one frontier-spec'd sweep cell serially (cold,
   no cache) to record its wall time against the number of frontier
   members it yields, then the whole cell list goes through the engine
   three times:
     cold   jobs=2, fresh cache dir
     warm   jobs=2, same cache dir
     check  jobs=1, another fresh dir
   The encoded outcomes of all three must be byte-identical — the
   frontier determinism contract (members depend only on the cell,
   never on the worker count or cache state) — and the bench exits
   non-zero if they are not. *)

open Hcv_core
open Hcv_workload
module E = Hcv_explore
module J = E.Jsonx

let seed = 42

let loops_of (c : Sweep.cell) =
  Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
    (Option.get (Specfp.find c.Sweep.bench))

let engine_pass ~jobs ~cache_dir cells =
  let cache = E.Cache.open_dir cache_dir in
  let engine = E.Engine.create ~jobs ~cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let outcomes = Sweep.run engine ~label:"frontier-bench" ~loops_of cells in
      let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      (wall_ns, List.map Sweep.outcome_to_string outcomes))

let pass_json ~jobs wall_ns =
  J.Obj [ ("jobs", J.Num (float_of_int jobs)); ("wall_ns", J.Num wall_ns) ]

let rec rm_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_tree (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let run ~quick ~out () =
  let n_loops = if quick then 6 else 10 in
  let benches =
    if quick then [ "applu"; "apsi"; "sixtrack" ]
    else List.map (fun s -> s.Specfp.name) Specfp.all
  in
  Printf.printf "Frontier bench: %d benchmarks, sweep cost vs frontier size\n%!"
    (List.length benches);
  let cells =
    List.map
      (fun b -> Sweep.cell ~n_loops ~seed ~frontier:Frontier.default_spec b)
      benches
  in
  (* Serial, uncached: the cost of one frontier sweep per benchmark. *)
  let rows =
    List.map
      (fun c ->
        let t0 = Unix.gettimeofday () in
        let o = Sweep.run_cell ~loops_of c in
        let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        (c.Sweep.bench, wall_ns, List.length o.Sweep.frontier))
      cells
  in
  List.iter
    (fun (bench, wall_ns, size) ->
      Printf.printf "  %-10s %3d member(s)   %10.0f ns/sweep\n%!" bench size
        wall_ns)
    rows;
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hcvliw-frontier-bench-%d" (Unix.getpid ()))
  in
  rm_tree base;
  Fun.protect
    ~finally:(fun () -> rm_tree base)
    (fun () ->
      let dir_main = Filename.concat base "main" in
      let dir_check = Filename.concat base "check" in
      let cold_ns, cold = engine_pass ~jobs:2 ~cache_dir:dir_main cells in
      let warm_ns, warm = engine_pass ~jobs:2 ~cache_dir:dir_main cells in
      let check_ns, check = engine_pass ~jobs:1 ~cache_dir:dir_check cells in
      let identical = cold = warm && cold = check in
      let report =
        J.Obj
          [
            ("schema", J.Str "hcvliw-frontier-bench-v1");
            ("n_loops", J.Num (float_of_int n_loops));
            ("seed", J.Num (float_of_int seed));
            ( "benches",
              J.List
                (List.map
                   (fun (bench, wall_ns, size) ->
                     J.Obj
                       [
                         ("bench", J.Str bench);
                         ("sweep_ns", J.Num wall_ns);
                         ("frontier_size", J.Num (float_of_int size));
                       ])
                   rows) );
            ("cold", pass_json ~jobs:2 cold_ns);
            ("warm", pass_json ~jobs:2 warm_ns);
            ("check_serial_cold", pass_json ~jobs:1 check_ns);
            ("identical", J.Bool identical);
          ]
      in
      let oc = open_out out in
      output_string oc (J.to_string report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "  cold %10.0f ns   warm %10.0f ns (jobs 2)\n%!" cold_ns
        warm_ns;
      Printf.printf "  wrote %s\n%!" out;
      if identical then
        Printf.printf
          "  frontiers byte-identical across jobs 1/2 and cold/warm cache\n%!"
      else begin
        prerr_endline "frontier bench: outcomes DIVERGED across passes";
        exit 1
      end)
