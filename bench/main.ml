(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Table 2, Figures 6-9) on the synthetic SPECfp
   populations, plus Bechamel micro-benchmarks of the compiler itself.

   Usage:
     main.exe [table1] [table2] [fig6] [fig7] [fig8] [fig9] [ablation]
              [micro] [frontier] [--quick] [--jobs N] [--cache DIR]
              [--resume] [--telemetry-csv FILE]
   With no selector, everything runs.  --quick shrinks the populations
   (figures *and* ablations) and skips the 2-bus variants of the
   sensitivity figures.

   Every figure/ablation sweep runs through the Hcv_explore engine:
   --jobs N computes the independent (configuration, benchmark) cells
   on N worker domains, --cache DIR memoises completed cells on disk so
   repeated runs and --resume after an interruption skip them, and the
   per-stage telemetry (cells, cache hits, wall clock) goes to stderr
   (and to --telemetry-csv as CSV).  Tables are assembled from the
   results in submission order, so stdout is byte-identical whatever
   the worker count and cache state. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload
module E = Hcv_explore

let quick = ref false
let seed = 42

(* Unwrap a Diag-carrying result in a context where failure is fatal. *)
let diag_ok = function
  | Ok v -> v
  | Error d -> failwith (Hcv_obs.Diag.to_string d)

let fig_loops () = if !quick then Some 6 else Some 10
let fig6_loops () = if !quick then Some 8 else None (* per-spec default *)
let sense_buses () = if !quick then [ 1 ] else [ 1; 2 ]

(* --quick must bound the ablation bench too, not just the figures. *)
let ablation_benches () =
  if !quick then [ "sixtrack"; "facerec" ]
  else [ "sixtrack"; "facerec"; "fma3d" ]

let unroll_loops () = if !quick then 4 else 8

(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Tablefmt.create
      ~title:
        "Table 1: instruction latencies and energy relative to an integer add"
      [
        ("class", Tablefmt.Left);
        ("INT lat", Tablefmt.Right);
        ("INT E", Tablefmt.Right);
        ("FP lat", Tablefmt.Right);
        ("FP E", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (label, clazz) ->
      let lat d = Opcode.latency (Opcode.make clazz d) in
      let en d = Opcode.energy (Opcode.make clazz d) in
      Tablefmt.add_row t
        [
          label;
          string_of_int (lat Opcode.Int);
          Printf.sprintf "%.1f" (en Opcode.Int);
          string_of_int (lat Opcode.Fp);
          Printf.sprintf "%.1f" (en Opcode.Fp);
        ])
    [
      ("Memory", Opcode.Memory);
      ("Arithmetic", Opcode.Arith);
      ("Multiply", Opcode.Mult);
      ("Division/Modulo/sqrt", Opcode.Div);
    ];
  Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)

let table2 () =
  let machine = Presets.machine_4c ~buses:1 in
  let t =
    Tablefmt.create
      ~title:
        "Table 2: share of execution time per constraint class (paper -> ours)"
      [
        ("benchmark", Tablefmt.Left);
        ("res paper", Tablefmt.Right);
        ("res ours", Tablefmt.Right);
        ("border paper", Tablefmt.Right);
        ("border ours", Tablefmt.Right);
        ("rec paper", Tablefmt.Right);
        ("rec ours", Tablefmt.Right);
      ]
  in
  List.iter
    (fun spec ->
      let loops = Specfp.loops ~seed spec in
      let res, border, rec_ = Specfp.table2_row machine loops in
      Tablefmt.add_row t
        [
          spec.Specfp.name;
          Tablefmt.cell_pct spec.Specfp.res_share;
          Tablefmt.cell_pct res;
          Tablefmt.cell_pct spec.Specfp.border_share;
          Tablefmt.cell_pct border;
          Tablefmt.cell_pct spec.Specfp.rec_share;
          Tablefmt.cell_pct rec_;
        ])
    Specfp.all;
  Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)

let loops_of (c : Sweep.cell) =
  match Specfp.find c.Sweep.bench with
  | Some spec -> Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed spec
  | None -> failwith (Printf.sprintf "unknown benchmark %S" c.Sweep.bench)

let all_cells ?n_loops ?grid_steps ?params ~buses () =
  List.map
    (fun spec ->
      Sweep.cell ~buses ?n_loops ~seed ?grid_steps ?params spec.Specfp.name)
    Specfp.all

(* Report failed cells exactly where the serial run reported them, then
   keep only the successful ones (the serial code dropped failures from
   the means as well). *)
let report_failures outcomes =
  List.filter
    (fun (o : Sweep.outcome) ->
      match o.Sweep.error with
      | None -> true
      | Some msg ->
        Printf.printf "  !! %s failed: %s\n%!" o.Sweep.bench msg;
        false)
    outcomes

let mean_ratio outcomes =
  Listx.mean (List.map (fun (o : Sweep.outcome) -> o.Sweep.ed2_ratio) outcomes)

(* Paper Figure 6 per-benchmark readings (approximate, from the bar
   chart; 1-bus values; used only as the "paper" column). *)
let fig6_paper =
  [
    ("wupwise", 0.95); ("swim", 0.90); ("mgrid", 0.90); ("applu", 0.95);
    ("galgel", 0.85); ("facerec", 0.70); ("lucas", 0.78); ("fma3d", 0.85);
    ("sixtrack", 0.65); ("apsi", 0.85);
  ]

let fig6 engine =
  let buses_list = [ 1; 2 ] in
  (* One sweep for the whole figure: every (bus count, benchmark) cell
     is independent. *)
  let cells =
    List.concat_map
      (fun buses -> all_cells ?n_loops:(fig6_loops ()) ~buses ())
      buses_list
  in
  let outcomes = Sweep.run engine ~label:"fig6" ~loops_of cells in
  let n_specs = List.length Specfp.all in
  List.iteri
    (fun i buses ->
      Printf.printf
        "Figure 6 (%d bus%s): ED2 normalised to the optimum homogeneous\n%!"
        buses (if buses > 1 then "es" else "");
      let results =
        report_failures
          (Listx.take n_specs (Listx.drop (i * n_specs) outcomes))
      in
      let t =
        Tablefmt.create
          [
            ("benchmark", Tablefmt.Left);
            ("ED2 paper", Tablefmt.Right);
            ("ED2 ours", Tablefmt.Right);
            ("time ratio", Tablefmt.Right);
            ("energy ratio", Tablefmt.Right);
          ]
      in
      List.iter
        (fun (o : Sweep.outcome) ->
          Tablefmt.add_row t
            [
              o.Sweep.bench;
              (match List.assoc_opt o.Sweep.bench fig6_paper with
              | Some v -> Tablefmt.cell_f v
              | None -> "-");
              Tablefmt.cell_f o.Sweep.ed2_ratio;
              Tablefmt.cell_f o.Sweep.time_ratio;
              Tablefmt.cell_f o.Sweep.energy_ratio;
            ])
        results;
      Tablefmt.add_sep t;
      Tablefmt.add_row t
        [ "mean"; Tablefmt.cell_f 0.85; Tablefmt.cell_f (mean_ratio results);
          "-"; "-" ];
      Tablefmt.print t;
      print_newline ())
    buses_list

(* ------------------------------------------------------------------ *)

let fig7 engine =
  Printf.printf
    "Figure 7: mean ED2 ratio vs number of supported frequencies\n%!";
  let steps_list = [ None; Some 16; Some 8; Some 4 ] in
  let cells =
    List.concat_map
      (fun buses ->
        List.concat_map
          (fun steps ->
            all_cells ?n_loops:(fig_loops ()) ?grid_steps:steps ~buses ())
          steps_list)
      (sense_buses ())
  in
  let outcomes = ref (Sweep.run engine ~label:"fig7" ~loops_of cells) in
  let next_group n =
    let g = Listx.take n !outcomes in
    outcomes := Listx.drop n !outcomes;
    g
  in
  let n_specs = List.length Specfp.all in
  let t =
    Tablefmt.create
      [
        ("buses", Tablefmt.Right);
        ("any freq", Tablefmt.Right);
        ("16 freqs", Tablefmt.Right);
        ("8 freqs", Tablefmt.Right);
        ("4 freqs", Tablefmt.Right);
      ]
  in
  List.iter
    (fun buses ->
      let cells =
        List.map
          (fun _steps ->
            let ok =
              List.filter
                (fun (o : Sweep.outcome) -> o.Sweep.error = None)
                (next_group n_specs)
            in
            Tablefmt.cell_f (mean_ratio ok))
          steps_list
      in
      Tablefmt.add_row t (string_of_int buses :: cells))
    (sense_buses ());
  Tablefmt.print t;
  Printf.printf
    "(paper: 16 freqs within 0.1%% of any; 8 freqs < 1%% worse; 4 freqs ~2%% worse)\n\n%!"

(* ------------------------------------------------------------------ *)

(* Figures 8 and 9 share their shape: a (buses x parameter-variant)
   grid of whole-population sweeps, one mean ED2 ratio per grid
   point. *)
let param_sense_figure engine ~label ~header ~footer variants =
  Printf.printf "%s\n%!" header;
  let cells =
    List.concat_map
      (fun buses ->
        List.concat_map
          (fun (_, params) ->
            all_cells ?n_loops:(fig_loops ()) ~params ~buses ())
          variants)
      (sense_buses ())
  in
  let outcomes = ref (Sweep.run engine ~label ~loops_of cells) in
  let n_specs = List.length Specfp.all in
  let next_group () =
    let g = Listx.take n_specs !outcomes in
    outcomes := Listx.drop n_specs !outcomes;
    g
  in
  let t =
    Tablefmt.create
      (("buses", Tablefmt.Right)
      :: List.map (fun (label, _) -> (label, Tablefmt.Right)) variants)
  in
  List.iter
    (fun buses ->
      let cells =
        List.map
          (fun _ ->
            let ok = report_failures (next_group ()) in
            Tablefmt.cell_f (mean_ratio ok))
          variants
      in
      Tablefmt.add_row t (string_of_int buses :: cells))
    (sense_buses ());
  Tablefmt.print t;
  Printf.printf "%s\n\n%!" footer

let fig8 engine =
  param_sense_figure engine ~label:"fig8"
    ~header:"Figure 8: mean ED2 ratio varying the ICN/cache energy shares"
    ~footer:"(paper: results vary only slightly across shares)"
    (List.map
       (fun (label, frac_icn, frac_cache) ->
         (label, Params.make ~frac_icn ~frac_cache ()))
       [
         ("0.10/0.25", 0.10, 0.25);
         ("0.10/0.33", 0.10, 1.0 /. 3.0);
         ("0.15/0.30", 0.15, 0.30);
         ("0.20/0.25", 0.20, 0.25);
         ("0.20/0.30", 0.20, 0.30);
       ])

let fig9 engine =
  param_sense_figure engine ~label:"fig9"
    ~header:
      "Figure 9: mean ED2 ratio varying the leakage shares (cluster/ICN/cache)"
    ~footer:"(paper: changing leakage shares has little impact)"
    (List.map
       (fun (label, leak_cluster, leak_icn, leak_cache) ->
         (label, Params.make ~leak_cluster ~leak_icn ~leak_cache ()))
       [
         ("0.25/0.05/0.60", 0.25, 0.05, 0.60);
         ("0.33/0.10/0.66", 1.0 /. 3.0, 0.10, 2.0 /. 3.0);
         ("0.40/0.15/0.70", 0.40, 0.15, 0.70);
         ("0.20/0.10/0.75", 0.20, 0.10, 0.75);
       ])

(* ------------------------------------------------------------------ *)

(* Ablation sweep cells: a few numbers per cell, serialized as a JSON
   row so a failure message survives the cache round-trip. *)
type abl_row = { values : float list; failure : string option }

let abl_codec ~salt =
  {
    E.Engine.cell_key =
      (fun (name, extras) -> E.Codec.digest (salt :: name :: extras));
    encode =
      (fun r ->
        let fields =
          [
            ( "values",
              E.Jsonx.List
                (List.map
                   (fun f -> E.Jsonx.Str (E.Codec.float_to_string f))
                   r.values) );
          ]
          @ match r.failure with
            | None -> []
            | Some m -> [ ("error", E.Jsonx.Str m) ]
        in
        E.Jsonx.to_string (E.Jsonx.Obj fields));
    decode =
      (fun s ->
        match E.Jsonx.of_string s with
        | Error _ -> None
        | Ok j ->
          let failure = Option.bind (E.Jsonx.member "error" j) E.Jsonx.str in
          Option.bind (E.Jsonx.member "values" j) E.Jsonx.list
          |> Option.map (fun xs ->
                 List.filter_map
                   (fun v ->
                     Option.bind (E.Jsonx.str v) E.Codec.float_of_string)
                   xs)
          |> Option.map (fun values -> { values; failure }));
  }

(* Ablations of the two heterogeneous-specific scheduling ingredients
   (§4.1): recurrence pre-placement and ED2-guided refinement; plus the
   §5.3 unrolling mitigation for coarse frequency grids. *)
let ablation engine =
  Printf.printf "Ablations (design choices called out in DESIGN.md)\n%!";
  let machine = Presets.machine_4c ~buses:1 in
  let bench_names = ablation_benches () in
  let n_loops = fig_loops () in
  let abl_cell name =
    ( name,
      [
        E.Codec.machine_key machine;
        E.Codec.params_key Params.default;
        string_of_int seed;
        (match n_loops with None -> "-" | Some n -> string_of_int n);
      ] )
  in
  let run_variants (name, _) =
    let spec = Option.get (Specfp.find name) in
    let loops = Specfp.loops ?n_loops ~seed spec in
    match Profile.profile ~machine ~loops () with
    | Error d -> { values = []; failure = Some (Hcv_obs.Diag.to_string d) }
    | Ok profile ->
      let units =
        Units.of_reference ~params:Params.default ~n_clusters:4
          profile.Profile.activity
      in
      let ctx = Model.ctx ~params:Params.default ~units () in
      let homo = diag_ok (Select.optimum_homogeneous ~ctx ~machine profile) in
      let config =
        (diag_ok (Select.select_heterogeneous ~ctx ~machine profile))
          .Select.config
      in
      let measure ?preplace ?score_mode () =
        let _, ed2, _ =
          Pipeline.measure_config ?preplace ?score_mode ~ctx ~machine ~profile
            ~config ()
        in
        ed2 /. homo.Select.predicted_ed2
      in
      {
        values =
          [
            measure ();
            measure ~preplace:false ();
            measure ~score_mode:Hsched.Schedulability ();
          ];
        failure = None;
      }
  in
  (* A quarantined cell renders like any other ablation failure. *)
  let abl_row_of = function
    | Ok row -> row
    | Error d -> { values = []; failure = Some (Hcv_obs.Diag.to_string d) }
  in
  let rows =
    List.map abl_row_of
      (E.Engine.sweep engine ~label:"ablation"
         ~codec:(abl_codec ~salt:"hcv-ablation-v1")
         run_variants
         (List.map abl_cell bench_names))
  in
  let t =
    Tablefmt.create
      ~title:"measured ED2 vs optimum homogeneous, per scheduler variant"
      [
        ("benchmark", Tablefmt.Left);
        ("full", Tablefmt.Right);
        ("no pre-placement", Tablefmt.Right);
        ("schedulability score", Tablefmt.Right);
      ]
  in
  List.iter2
    (fun name row ->
      match row with
      | { failure = Some msg; _ } -> Printf.printf "  !! %s: %s\n%!" name msg
      | { values = [ full; no_pre; score ]; _ } ->
        Tablefmt.add_row t
          [
            name; Tablefmt.cell_f full; Tablefmt.cell_f no_pre;
            Tablefmt.cell_f score;
          ]
      | _ -> Printf.printf "  !! %s: malformed ablation row\n%!" name)
    bench_names rows;
  Tablefmt.print t;
  (* Unrolling vs coarse frequency grids: mean loop-level ED2 with a
     4-frequency grid, scheduling the plain vs the 2x-unrolled loop. *)
  let machine4 = Machine.with_grid machine (Presets.grid_of_steps (Some 4)) in
  let unroll_cell =
    ( "sixtrack-unroll",
      [
        E.Codec.machine_key machine4;
        string_of_int seed;
        string_of_int (unroll_loops ());
      ] )
  in
  let run_unroll (_, _) =
    let spec = Option.get (Specfp.find "sixtrack") in
    let loops = Specfp.loops ~n_loops:(unroll_loops ()) ~seed spec in
    match Profile.profile ~machine:machine4 ~loops () with
    | Error d -> { values = []; failure = Some (Hcv_obs.Diag.to_string d) }
    | Ok profile ->
      let units =
        Units.of_reference ~params:Params.default ~n_clusters:4
          profile.Profile.activity
      in
      let ctx = Model.ctx ~params:Params.default ~units () in
      let config =
        (diag_ok (Select.select_heterogeneous ~ctx ~machine:machine4 profile))
          .Select.config
      in
      let sync_and_time unroll =
        List.fold_left
          (fun (bumps, time) (lp : Profile.loop_profile) ->
            let loop = Hcv_sched.Unroll.loop ~factor:unroll lp.Profile.loop in
            match Hsched.schedule ~ctx ~config ~loop () with
            | Ok (sched, stats) ->
              ( bumps + stats.Hsched.sync_bumps,
                time
                +. lp.Profile.reps
                   *. Hcv_sched.Schedule.exec_time_ns sched ~trip:loop.Loop.trip
              )
            | Error _ -> (bumps, time))
          (0, 0.0) profile.Profile.loops
      in
      let b1, t1 = sync_and_time 1 in
      let b2, t2 = sync_and_time 2 in
      { values = [ float_of_int b1; t1; float_of_int b2; t2 ]; failure = None }
  in
  (match
     List.map abl_row_of
       (E.Engine.sweep engine ~label:"ablation-unroll"
          ~codec:(abl_codec ~salt:"hcv-ablation-unroll-v1")
          run_unroll [ unroll_cell ])
   with
  | [ { failure = Some msg; _ } ] ->
    Printf.printf "  !! unroll ablation: %s\n%!" msg
  | [ { values = [ b1; t1; b2; t2 ]; _ } ] ->
    Printf.printf
      "unrolling under a 4-frequency grid (sixtrack): plain %d sync bumps, \
       %.0f ns; unrolled x2 %d sync bumps, %.0f ns (%.1f%% time change)\n\n%!"
      (int_of_float b1) t1 (int_of_float b2) t2
      (100.0 *. ((t2 /. t1) -. 1.0))
  | _ -> Printf.printf "  !! unroll ablation: malformed row\n%!");
  ()

(* ------------------------------------------------------------------ *)

let micro () =
  Printf.printf "Micro-benchmarks (Bechamel)\n%!";
  let open Bechamel in
  let machine = Presets.machine_4c ~buses:1 in
  let spec = Option.get (Specfp.find "galgel") in
  let loops = Specfp.loops ~n_loops:6 ~seed spec in
  let loop = List.hd loops in
  let profile = diag_ok (Profile.profile ~machine ~loops ()) in
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  let ctx = Model.ctx ~params:Params.default ~units () in
  let hetero = diag_ok (Select.select_heterogeneous ~ctx ~machine profile) in
  let hetero_sched =
    diag_ok
      (Result.map fst
         (Hsched.schedule ~ctx ~config:hetero.Select.config ~loop ()))
  in
  let tests =
    [
      Test.make ~name:"recurrence-analysis"
        (Staged.stage (fun () ->
             ignore (Recurrence.find_all loop.Loop.ddg)));
      Test.make ~name:"homogeneous-schedule"
        (Staged.stage (fun () ->
             ignore
               (Hcv_sched.Homo.schedule ~machine ~cycle_time:Q.one ~loop ())));
      Test.make ~name:"heterogeneous-schedule"
        (Staged.stage (fun () ->
             ignore (Hsched.schedule ~ctx ~config:hetero.Select.config ~loop ())));
      Test.make ~name:"config-selection"
        (Staged.stage (fun () ->
             ignore (Select.select_heterogeneous ~ctx ~machine profile)));
      Test.make ~name:"simulate-100-iters"
        (Staged.stage (fun () ->
             ignore (Hcv_sim.Simulator.run ~schedule:hetero_sched ~trip:100 ())));
    ]
  in
  let run_one test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter (fun test -> run_one (Test.make_grouped ~name:"" [ test ])) tests;
  print_newline ()

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [table1] [table2] [fig6] [fig7] [fig8] [fig9] [ablation]\n\
    \                [micro] [perf] [partition-micro] [serve] [frontier]\n\
    \                [families] [--quick] [--jobs N] [--cache DIR]\n\
    \                [--resume] [--telemetry-csv FILE] [--perf-out FILE]\n\
    \                [--perf-baseline FILE] [--perf-reps N] [--perf-gate R]\n\
    \                [--serve-out FILE] [--frontier-out FILE]\n\
    \                [--families-out FILE]";
  exit 2

let () =
  let jobs = ref 1 in
  let cache_dir = ref None in
  let resume = ref false in
  let csv = ref None in
  let perf_out = ref "BENCH_3.json" in
  let perf_baseline = ref "BENCH_2.json" in
  let perf_reps = ref None in
  let perf_gate = ref None in
  let serve_out = ref "BENCH_serve.json" in
  let frontier_out = ref "BENCH_frontier.json" in
  let families_out = ref "BENCH_families.json" in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      Printf.eprintf "error: %s expects a positive integer, got %S\n" name v;
      usage ()
  in
  let rec parse selected = function
    | [] -> List.rev selected
    | "--quick" :: rest ->
      quick := true;
      parse selected rest
    | "--jobs" :: v :: rest ->
      jobs := int_arg "--jobs" v;
      parse selected rest
    | "--cache" :: dir :: rest ->
      cache_dir := Some dir;
      parse selected rest
    | "--resume" :: rest ->
      resume := true;
      parse selected rest
    | "--telemetry-csv" :: file :: rest ->
      csv := Some file;
      parse selected rest
    | "--perf-out" :: file :: rest ->
      perf_out := file;
      parse selected rest
    | "--perf-baseline" :: file :: rest ->
      perf_baseline := file;
      parse selected rest
    | "--perf-reps" :: v :: rest ->
      perf_reps := Some (int_arg "--perf-reps" v);
      parse selected rest
    | "--perf-gate" :: v :: rest ->
      (match float_of_string_opt v with
      | Some g when g > 0.0 -> perf_gate := Some g
      | Some _ | None ->
        Printf.eprintf "error: --perf-gate expects a positive ratio, got %S\n"
          v;
        usage ());
      parse selected rest
    | "--serve-out" :: file :: rest ->
      serve_out := file;
      parse selected rest
    | "--frontier-out" :: file :: rest ->
      frontier_out := file;
      parse selected rest
    | "--families-out" :: file :: rest ->
      families_out := file;
      parse selected rest
    | ( "--jobs" | "--cache" | "--telemetry-csv" | "--perf-out"
      | "--perf-baseline" | "--perf-reps" | "--perf-gate" | "--serve-out"
      | "--frontier-out" | "--families-out" )
      :: [] ->
      usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "error: unknown option %s\n" arg;
      usage ()
    | name :: rest -> parse (name :: selected) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  if !resume && !cache_dir = None then begin
    prerr_endline "error: --resume needs --cache DIR";
    usage ()
  end;
  let cache = Option.map E.Cache.open_dir !cache_dir in
  (match (cache, !resume) with
  | Some c, true ->
    Printf.eprintf "resuming: %d completed cells on disk\n%!"
      (E.Cache.stats c).E.Cache.entries
  | _, _ -> ());
  let progress = E.Progress.create ~verbose:true ?csv:!csv () in
  let engine = E.Engine.create ~jobs:!jobs ?cache ~progress () in
  Fun.protect
    ~finally:(fun () ->
      (match cache with
      | Some c ->
        let s = E.Cache.stats c in
        Printf.eprintf "cache: %d hits, %d misses, %d entries\n%!"
          s.E.Cache.hits s.E.Cache.misses s.E.Cache.entries
      | None -> ());
      E.Engine.shutdown engine)
    (fun () ->
      let selected = if args = [] then [ "all" ] else args in
      let want name = List.mem name selected || List.mem "all" selected in
      if want "table1" then table1 ();
      if want "table2" then table2 ();
      if want "fig6" then fig6 engine;
      if want "fig7" then fig7 engine;
      if want "fig8" then fig8 engine;
      if want "fig9" then fig9 engine;
      if want "ablation" then ablation engine;
      if want "micro" then micro ();
      (* perf and serve run only when asked for by name: they are timing
         harnesses, not part of the paper's tables/figures, so "all"
         skips them. *)
      if List.mem "serve" selected then
        Serve_bench.run ~quick:!quick ~out:!serve_out ();
      if List.mem "frontier" selected then
        Frontier_bench.run ~quick:!quick ~out:!frontier_out ();
      if List.mem "families" selected then
        Families_bench.run ~quick:!quick ~out:!families_out ();
      let reps =
        match !perf_reps with
        | Some n -> n
        | None -> if !quick then 3 else 5
      in
      if List.mem "partition-micro" selected then
        Perf.partition_micro ~quick:!quick ~reps ();
      if List.mem "perf" selected then
        Perf.run ~quick:!quick ~reps ~out:!perf_out ~baseline:!perf_baseline
          ?gate:!perf_gate ())
