(* Serving-plane benchmark: drive the daemon's dispatcher in-process
   with a deterministic request stream and report requests/s plus
   p50/p99 latency, cold cache vs warm cache.

   Four passes over the same stream:
     cold   jobs=2, fresh cache dir  (reported as "cold")
     warm   jobs=2, same cache dir   (reported as "warm")
     check  jobs=1, another fresh dir
     ample  jobs=2, fresh dir, every request carrying an ample
            deadline_ms — a deadline that never binds must not change
            a single response byte (it only caps work, and the cap is
            far above what any request needs)
   The response sequences of all four must be byte-identical — the
   serving plane's determinism contract (responses depend only on
   request content, never on worker count, cache state or a non-binding
   deadline) — and the bench exits non-zero if they are not. *)

module E = Hcv_explore
module S = Hcv_serve
module J = E.Jsonx

type pass = {
  wall_ns : float;
  latencies_ns : float list;
  responses : string list;
  ok : int;
  errors : int;
}

let run_pass ~jobs ~cache_dir lines =
  let cache = E.Cache.open_dir cache_dir in
  let engine = E.Engine.create ~jobs ~cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () ->
      let dispatch = S.Dispatch.create engine in
      let t0 = Unix.gettimeofday () in
      let answered =
        List.map
          (fun line ->
            let s0 = Unix.gettimeofday () in
            let resp = S.Dispatch.handle_line dispatch line in
            ((Unix.gettimeofday () -. s0) *. 1e9, resp))
          lines
      in
      let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      let responses = List.map snd answered in
      let ok, errors =
        List.fold_left
          (fun (ok, err) resp ->
            match S.Proto.parse_response resp with
            | Ok r when r.S.Proto.ok -> (ok + 1, err)
            | _ -> (ok, err + 1))
          (0, 0) responses
      in
      { wall_ns; latencies_ns = List.map fst answered; responses; ok; errors })

let pass_json ~jobs ~requests p =
  J.Obj
    [
      ("jobs", J.Num (float_of_int jobs));
      ("wall_ns", J.Num p.wall_ns);
      ( "rps",
        J.Num
          (if p.wall_ns > 0.0 then float_of_int requests /. (p.wall_ns /. 1e9)
           else 0.0) );
      ("ok", J.Num (float_of_int p.ok));
      ("errors", J.Num (float_of_int p.errors));
      ("p50_ns", J.Num (S.Load.percentile p.latencies_ns 0.50));
      ("p99_ns", J.Num (S.Load.percentile p.latencies_ns 0.99));
    ]

let rec rm_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_tree (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let run ~quick ~out () =
  let requests = if quick then 20 else 60 in
  let n_loops = 2 in
  let seed = 42 in
  Printf.printf "Serve bench: %d requests, cold vs warm cache\n%!" requests;
  let lines = S.Load.requests ~mix:S.Load.Clean ~n_loops ~seed requests in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hcvliw-serve-bench-%d" (Unix.getpid ()))
  in
  rm_tree base;
  Fun.protect
    ~finally:(fun () -> rm_tree base)
    (fun () ->
      let dir_main = Filename.concat base "main" in
      let dir_check = Filename.concat base "check" in
      let dir_ample = Filename.concat base "ample" in
      let ample_deadline_ms = 60_000 in
      let ample_lines =
        List.map (S.Load.with_deadline ample_deadline_ms) lines
      in
      let cold = run_pass ~jobs:2 ~cache_dir:dir_main lines in
      let warm = run_pass ~jobs:2 ~cache_dir:dir_main lines in
      let check = run_pass ~jobs:1 ~cache_dir:dir_check lines in
      let ample = run_pass ~jobs:2 ~cache_dir:dir_ample ample_lines in
      let identical =
        cold.responses = warm.responses
        && cold.responses = check.responses
        && cold.responses = ample.responses
      in
      let report =
        J.Obj
          [
            ("schema", J.Str "hcvliw-serve-bench-v1");
            ("requests", J.Num (float_of_int requests));
            ("n_loops", J.Num (float_of_int n_loops));
            ("seed", J.Num (float_of_int seed));
            ("cold", pass_json ~jobs:2 ~requests cold);
            ("warm", pass_json ~jobs:2 ~requests warm);
            ("check_serial_cold", pass_json ~jobs:1 ~requests check);
            ("ample_deadline_ms", J.Num (float_of_int ample_deadline_ms));
            ("ample_deadline", pass_json ~jobs:2 ~requests ample);
            ("identical", J.Bool identical);
          ]
      in
      let oc = open_out out in
      output_string oc (J.to_string report);
      output_char oc '\n';
      close_out oc;
      let show tag p =
        Printf.printf "  %-5s %8.1f req/s   p50 %10.0f ns   p99 %10.0f ns\n%!"
          tag
          (float_of_int requests /. (p.wall_ns /. 1e9))
          (S.Load.percentile p.latencies_ns 0.50)
          (S.Load.percentile p.latencies_ns 0.99)
      in
      show "cold" cold;
      show "warm" warm;
      show "ample" ample;
      Printf.printf "  wrote %s\n%!" out;
      if identical then
        Printf.printf
          "  responses byte-identical across jobs 1/2, cold/warm cache and \
           an ample deadline\n%!"
      else begin
        prerr_endline
          "serve bench: response sequences DIVERGED across passes";
        exit 1
      end)
