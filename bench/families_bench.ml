(* Machine-family sweep benchmark: run the full pipeline for every
   named capability-asymmetric family over the benchmark population,
   cold cache vs warm cache, and report per-family normalised ratios.

   Three passes over the same cells, mirroring the serve bench:
     cold   jobs=2, fresh cache dir  (reported as "cold")
     warm   jobs=2, same cache dir   (reported as "warm")
     check  jobs=1, another fresh dir
   The encoded outcome sequences of all three must be byte-identical —
   family cells obey the same determinism contract as paper-machine
   cells (outcomes depend only on cell content, never on worker count
   or cache state) — and the bench exits non-zero if they are not. *)

module E = Hcv_explore
module J = E.Jsonx
open Hcv_core
open Hcv_workload

type pass = { wall_ns : float; rendered : string list }

let families = Hcv_machine.Family.names

let cells ~n_loops =
  List.concat_map
    (fun f ->
      List.map
        (fun (s : Specfp.spec) ->
          Sweep.cell ~buses:1 ~n_loops ~seed:42 ~machine:(Sweep.Family f)
            s.Specfp.name)
        Specfp.all)
    families

let loops_of (c : Sweep.cell) =
  Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
    (Option.get (Specfp.find c.Sweep.bench))

let run_pass ~jobs ~cache_dir cells =
  let cache = E.Cache.open_dir cache_dir in
  let engine = E.Engine.create ~jobs ~cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let outcomes = Sweep.run engine ~label:"families" ~loops_of cells in
      let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      { wall_ns; rendered = List.map Sweep.outcome_to_string outcomes })

let pass_json ~jobs ~cells p =
  J.Obj
    [
      ("jobs", J.Num (float_of_int jobs));
      ("wall_ns", J.Num p.wall_ns);
      ( "cells_per_s",
        J.Num
          (if p.wall_ns > 0.0 then float_of_int cells /. (p.wall_ns /. 1e9)
           else 0.0) );
    ]

let rec rm_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_tree (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* Per-family summary decoded from the cold pass: mean ratios over the
   benchmarks that scheduled, plus the failure count. *)
let family_json family rendered =
  let outcomes = List.filter_map Sweep.outcome_of_string rendered in
  let ok =
    List.filter (fun (o : Sweep.outcome) -> o.Sweep.error = None) outcomes
  in
  let mean f =
    match ok with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc o -> acc +. f o) 0.0 ok
      /. float_of_int (List.length ok)
  in
  J.Obj
    [
      ("family", J.Str family);
      ("benchmarks", J.Num (float_of_int (List.length outcomes)));
      ("failed", J.Num (float_of_int (List.length outcomes - List.length ok)));
      ("mean_ed2_ratio", J.Num (mean (fun o -> o.Sweep.ed2_ratio)));
      ("mean_time_ratio", J.Num (mean (fun o -> o.Sweep.time_ratio)));
      ("mean_energy_ratio", J.Num (mean (fun o -> o.Sweep.energy_ratio)));
    ]

let run ~quick ~out () =
  let n_loops = if quick then 2 else 4 in
  let cells = cells ~n_loops in
  let n_cells = List.length cells in
  Printf.printf "Families bench: %d families x %d benchmarks, cold vs warm \
                 cache\n%!"
    (List.length families)
    (List.length Specfp.all);
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hcvliw-families-bench-%d" (Unix.getpid ()))
  in
  rm_tree base;
  Fun.protect
    ~finally:(fun () -> rm_tree base)
    (fun () ->
      let dir_main = Filename.concat base "main" in
      let dir_check = Filename.concat base "check" in
      let cold = run_pass ~jobs:2 ~cache_dir:dir_main cells in
      let warm = run_pass ~jobs:2 ~cache_dir:dir_main cells in
      let check = run_pass ~jobs:1 ~cache_dir:dir_check cells in
      let identical =
        cold.rendered = warm.rendered && cold.rendered = check.rendered
      in
      (* The cold pass's outcomes arrive in cell order: one group of
         [Specfp.all] per family. *)
      let n_benches = List.length Specfp.all in
      let rec drop n = function
        | _ :: xs when n > 0 -> drop (n - 1) xs
        | xs -> xs
      in
      let rec take n = function
        | x :: xs when n > 0 -> x :: take (n - 1) xs
        | _ -> []
      in
      let groups =
        List.mapi
          (fun i f ->
            (f, take n_benches (drop (i * n_benches) cold.rendered)))
          families
      in
      let report =
        J.Obj
          [
            ("schema", J.Str "hcvliw-families-bench-v1");
            ("families", J.List (List.map (fun f -> J.Str f) families));
            ("benchmarks", J.Num (float_of_int n_benches));
            ("n_loops", J.Num (float_of_int n_loops));
            ("seed", J.Num 42.0);
            ("cold", pass_json ~jobs:2 ~cells:n_cells cold);
            ("warm", pass_json ~jobs:2 ~cells:n_cells warm);
            ("check_serial_cold", pass_json ~jobs:1 ~cells:n_cells check);
            ("identical", J.Bool identical);
            ( "results",
              J.List (List.map (fun (f, rs) -> family_json f rs) groups) );
          ]
      in
      let oc = open_out out in
      output_string oc (J.to_string report);
      output_char oc '\n';
      close_out oc;
      let show tag p =
        Printf.printf "  %-5s %8.1f cells/s   wall %10.0f ns\n%!" tag
          (float_of_int n_cells /. (p.wall_ns /. 1e9))
          p.wall_ns
      in
      show "cold" cold;
      show "warm" warm;
      Printf.printf "  wrote %s\n%!" out;
      if identical then
        Printf.printf
          "  outcomes byte-identical across jobs 1/2 and cold/warm cache\n%!"
      else begin
        prerr_endline
          "families bench: outcome sequences DIVERGED across passes";
        exit 1
      end)
